#!/usr/bin/env python3
"""Placement lab: explore CCDP's operating envelope with synthetic specs.

Uses the parametric workload kit to sweep the question the paper's
Table 3 analysis answers qualitatively: *when* does cache-conscious
placement help?  The sweep varies the hot working set from "fits easily"
to "twice the cache" and prints the achievable reduction at each point —
reproducing the paper's narrative arc from m88ksim/fpppp (popular set
fits: big wins) to mgrid (nothing fits: no win) with a single knob.
"""

from __future__ import annotations

from repro import run_experiment
from repro.analysis import render_summary, summarize_profile
from repro.runtime.driver import profile_workload
from repro.workloads.synthetic import aliased_hot_set

CACHE_SIZE = 8192


def main() -> None:
    print("hot working set sweep (aliased hot globals, 8K direct-mapped)\n")
    print(f"{'hot set':>10}  {'vs cache':>9}  {'natural':>8}  "
          f"{'ccdp':>8}  {'reduction':>9}")
    for hot_globals, hot_size in (
        (2, 1024),   # 2 KB   — trivial fit
        (4, 1024),   # 4 KB   — comfortable
        (4, 1920),   # 7.5 KB — just fits (the m88ksim/fpppp regime)
        (6, 1920),   # 11 KB  — overflows (capacity-bound)
        (8, 1920),   # 15 KB  — far past (the mgrid regime)
    ):
        workload = aliased_hot_set(
            hot_globals=hot_globals,
            hot_size=hot_size,
            cache_size=CACHE_SIZE,
            iterations=1200,
        )
        result = run_experiment(workload)
        total = hot_globals * hot_size
        print(
            f"{total:>9}B  {total / CACHE_SIZE:>8.2f}x  "
            f"{result.original.cache.miss_rate:>7.2f}%  "
            f"{result.ccdp.cache.miss_rate:>7.2f}%  "
            f"{result.miss_reduction_pct:>8.1f}%"
        )

    print(
        "\nthe reduction collapses once the popular set exceeds the "
        "cache:\nplacement can only remove *inter-object* conflicts "
        "(paper, Sections 2 and 5.1).\n"
    )

    # Show the profile summary for the sweet-spot configuration.
    workload = aliased_hot_set(hot_globals=4, hot_size=1920, iterations=1200)
    profile = profile_workload(workload, workload.train_input)
    print(render_summary(summarize_profile(profile),
                         title="profile summary — 4x1920B hot set"))


if __name__ == "__main__":
    main()
