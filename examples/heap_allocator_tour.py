#!/usr/bin/env python3
"""Tour of the heap side of CCDP: XOR names, bins, preferred offsets.

Profiles ``espresso`` (a heap-placement program), then walks through what
the placement algorithm decided for its heap: which XOR names collided
(concurrently live allocations from the same call chain), which received
allocation-bin tags, and which earned preferred cache offsets — and
finally shows the custom allocator honouring those decisions.
"""

from __future__ import annotations

from repro import build_placement, make_workload
from repro.memory.allocators import BinnedHeap
from repro.trace.events import Category


def main() -> None:
    workload = make_workload("espresso")
    profile, placement = build_placement(workload)

    heap_entities = profile.entities_of(Category.HEAP)
    print(f"{workload.name}: {len(heap_entities)} heap names observed\n")

    print(f"{'XOR name':>12}  {'allocs':>7}  {'maxsz':>6}  "
          f"{'collided':>8}  {'bin':>4}  {'pref.offset':>11}")
    for entity in heap_entities:
        decision = placement.heap_table.get(entity.heap_name)
        bin_tag = decision.bin_tag if decision else None
        preferred = decision.preferred_offset if decision else None
        print(
            f"{entity.heap_name:>#12x}  {entity.alloc_count:>7}  "
            f"{entity.size:>6}  {str(entity.collided):>8}  "
            f"{str(bin_tag):>4}  {str(preferred):>11}"
        )

    print("\ncollided names are demoted to unpopular (paper, Phase 1) but")
    print("keep their allocation-bin tags; unique popular names also get a")
    print("preferred starting cache offset for the custom malloc.\n")

    # Drive the custom allocator directly with one table entry.
    placed = [
        (name, decision)
        for name, decision in placement.heap_table.items()
        if decision.preferred_offset is not None
    ]
    if placed:
        name, decision = placed[0]
        heap = BinnedHeap(cache_size=placement.cache_config.size)
        addresses = [
            heap.allocate(64, decision.bin_tag, decision.preferred_offset)
            for _ in range(3)
        ]
        print(f"custom malloc for name {name:#x} "
              f"(bin {decision.bin_tag}, offset {decision.preferred_offset}):")
        for addr in addresses:
            print(
                f"  allocated at {addr:#x} -> cache offset "
                f"{addr % placement.cache_config.size}"
            )


if __name__ == "__main__":
    main()
