#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Prints Tables 1-5, the Figure 3 scatter summary, the Section 5.1
random-placement comparison, and the Section 5.2 geometry sweep, in the
paper's order.  This is the script EXPERIMENTS.md is generated from.

Run time: a few minutes (every program is profiled, placed, and
simulated under multiple placements and inputs).
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    run_figure3,
    run_associative_placement,
    run_geometry_sweep,
    run_random_vs_natural,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments import (
    run_hierarchy_study,
    run_input_sensitivity,
    run_overhead_report,
    run_sampling_study,
)
from repro.experiments.ablations import (
    naming_depth_study,
    sweep_heap_discipline,
    sweep_chunk_size,
    sweep_heap_placement,
    sweep_popularity_cutoff,
    sweep_queue_threshold,
)


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment fan-out (default 1; "
        "try the machine's core count)",
    )
    args = parser.parse_args()
    from repro.experiments.common import set_parallel_jobs

    set_parallel_jobs(args.jobs)

    start = time.time()

    section("Table 1 (paper p.5): workload statistics")
    print(run_table1().render())

    section("Table 2 (paper p.5): same-input miss rates")
    table2 = run_table2()
    print(table2.render())
    print(f"\naverage reduction: {table2.average_reduction:.2f}% "
          "(paper: 30.35%)")

    section("Table 3 (paper p.7): references by object size")
    print(run_table3().render())

    section("Table 4 (paper p.7): cross-input miss rates")
    table4 = run_table4()
    print(table4.render())
    print(f"\naverage reduction: {table4.average_reduction:.2f}% "
          "(paper: 23.75%)")

    section("Table 5 (paper p.7): paging and working sets")
    print(run_table5().render())

    section("Figure 3 (paper p.8): heap objects, miss rate vs references")
    figure3 = run_figure3()
    print(figure3.render())
    for program in ("deltablue", "groff"):
        print()
        print(figure3.render_plot(program))

    section("Section 5.1: random vs natural placement")
    random_result = run_random_vs_natural()
    print(random_result.render())
    print(f"\nmean increase under random placement: "
          f"{random_result.mean_increase:.1f}%")

    section("Section 5.2: placement vs cache geometry")
    print(run_geometry_sweep().render())

    section("Section 5.2 extension: associative (set-granular) placement")
    print(run_associative_placement().render())

    section("Ablations (design choices from Sections 3.2/3.4 and Phase 0)")
    for sweep in (
        sweep_queue_threshold,
        sweep_chunk_size,
        naming_depth_study,
        sweep_popularity_cutoff,
        sweep_heap_placement,
        sweep_heap_discipline,
    ):
        print(sweep().render())
        print()

    section("Input sensitivity: one placement, all inputs")
    print(run_input_sensitivity().render())

    section("Extensions: overhead, hierarchy, sampled profiling")
    print(run_overhead_report().render())
    print()
    print(run_hierarchy_study().render())
    print()
    print(run_sampling_study().render())

    print(f"\n[total {time.time() - start:.0f}s]")


if __name__ == "__main__":
    main()
