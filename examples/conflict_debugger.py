#!/usr/bin/env python3
"""Debug a layout: predicted vs measured conflicts, before and after.

The TRG predicts which object pairs will fight over cache lines; an
eviction-tracking simulation shows which pairs actually did.  This
example runs m88ksim under both placements with eviction tracking and
prints the conflict report — the natural placement's top measured pair
should match the TRG's top predicted pair, and the CCDP run should show
that pair gone.
"""

from __future__ import annotations

from repro import CCDPResolver, NaturalResolver, make_workload
from repro.analysis.conflicts import (
    conflict_report,
    total_cross_object_evictions,
)
from repro.cache.simulator import CacheSimulator
from repro.runtime.driver import build_placement
from repro.runtime.replay import ReplaySink
from repro.trace.sinks import TraceSink


class _LabelCollector(TraceSink):
    """Record obj_id -> symbol for pretty-printing."""

    def __init__(self) -> None:
        self.labels = {0: "stack"}

    def on_object(self, info) -> None:
        self.labels[info.obj_id] = info.symbol

    def on_alloc(self, info, return_addresses) -> None:
        self.labels[info.obj_id] = info.symbol


def tracked_run(workload, resolver):
    cache = CacheSimulator(track_evictions=True)
    labels = _LabelCollector()
    sink = ReplaySink(resolver, cache)

    class Both(TraceSink):
        def on_object(self, info):
            labels.on_object(info)
            sink.on_object(info)

        def on_alloc(self, info, ras):
            labels.on_alloc(info, ras)
            sink.on_alloc(info, ras)

        def on_free(self, obj_id):
            sink.on_free(obj_id)

        def on_access(self, *args):
            sink.on_access(*args)

    workload.run(Both(), workload.test_input)
    return cache, labels.labels


def main() -> None:
    workload = make_workload("m88ksim")
    profile, placement = build_placement(workload)

    before, labels = tracked_run(workload, NaturalResolver())
    after, _ = tracked_run(workload, CCDPResolver(placement))

    print(conflict_report(profile, before, after, labels))
    print()
    print(f"cross-object evictions, natural: "
          f"{total_cross_object_evictions(before)}")
    print(f"cross-object evictions, CCDP:    "
          f"{total_cross_object_evictions(after)}")


if __name__ == "__main__":
    main()
