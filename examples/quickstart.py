#!/usr/bin/env python3
"""Quickstart: profile, place, and measure one benchmark.

Runs the full CCDP pipeline on ``m88ksim`` (the paper's biggest winner):

1. profile the training input -> Name profile + TRG;
2. run the 9-phase placement algorithm;
3. simulate the testing input under the original, CCDP, and random
   placements on the paper's 8 KB direct-mapped cache;
4. print the per-category miss rates, paper-table style.
"""

from __future__ import annotations

from repro import (
    Category,
    make_workload,
    measure,
    run_experiment,
    RandomResolver,
)


def main() -> None:
    workload = make_workload("m88ksim")
    print(f"workload: {workload.name}")
    print(f"  training input: {workload.train_input}")
    print(f"  testing input:  {workload.test_input}")

    result = run_experiment(workload, include_random=True)

    print("\nplacement summary")
    stats = result.placement.stats
    print(f"  popular entities: {stats.popular_entities}")
    print(f"  compound-node merges: {stats.merges}")
    print(f"  packed small globals: {stats.packed_small_globals}")
    print(f"  residual predicted conflict: {stats.total_conflict_cost}")

    print("\nmiss rates (8K direct-mapped, 32B lines)")
    header = f"  {'placement':<10} {'D-Miss':>7}" + "".join(
        f" {cat.label:>7}" for cat in Category
    )
    print(header)
    for label, cache in (
        ("original", result.original.cache),
        ("ccdp", result.ccdp.cache),
        ("random", result.random.cache),
    ):
        row = f"  {label:<10} {cache.miss_rate:>7.2f}" + "".join(
            f" {cache.category_miss_rate(cat):>7.2f}" for cat in Category
        )
        print(row)

    print(f"\nCCDP miss-rate reduction: {result.miss_reduction_pct:.1f}%")
    print("(the paper reports 62.9%/74.4% for m88ksim in Tables 2/4)")


if __name__ == "__main__":
    main()
