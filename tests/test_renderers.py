"""Tests for the linker-script and ASCII-scatter renderers."""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.core.placement_map import HeapDecision, PlacementMap
from repro.reporting.linker_script import render_linker_script
from repro.reporting.scatterplot import ScatterPoint, render_scatter


def make_placement() -> PlacementMap:
    placement = PlacementMap(cache_config=CacheConfig(1024, 32, 1))
    placement.data_base = 0x10000
    placement.stack_base = 0x40000
    placement.global_offsets = {"alpha": 0, "beta": 64, "gamma": 256}
    placement.heap_table = {
        0xBEEF: HeapDecision(bin_tag=1, preferred_offset=96),
        0xCAFE: HeapDecision(bin_tag=None, preferred_offset=None),
    }
    return placement


class TestLinkerScript:
    def test_contains_base_and_symbols(self):
        text = render_linker_script(make_placement())
        assert ". = 0x00010000;" in text
        assert "alpha = .;" in text
        assert "__stack_start = 0x00040000;" in text

    def test_symbols_in_offset_order(self):
        text = render_linker_script(make_placement())
        assert text.index("alpha") < text.index("beta") < text.index("gamma")

    def test_padding_emitted_with_sizes(self):
        text = render_linker_script(
            make_placement(), global_sizes={"alpha": 32, "beta": 64, "gamma": 8}
        )
        # alpha ends at 32, beta starts at 64 -> 0x20 pad; beta ends at
        # 128, gamma at 256 -> 0x80 pad.
        assert ". = . + 0x20;  /* pad */" in text
        assert ". = . + 0x80;  /* pad */" in text

    def test_heap_table_comment(self):
        text = render_linker_script(make_placement())
        assert "0x0000beef" in text
        assert "XOR fold depth: 4" in text

    def test_no_heap_table_section_when_empty(self):
        placement = make_placement()
        placement.heap_table = {}
        text = render_linker_script(placement)
        assert "allocation table" not in text

    def test_program_name_in_header(self):
        text = render_linker_script(make_placement(), program="demo.elf")
        assert "demo.elf" in text


class TestScatterPlot:
    def test_empty(self):
        assert "(no points)" in render_scatter([], title="t")

    def test_high_y_lands_on_top_row(self):
        points = [ScatterPoint(x=100, y=100)]
        lines = render_scatter(points, height=8, width=20).splitlines()
        assert any(g in lines[1] for g in ".o#@")

    def test_low_y_lands_on_bottom_row(self):
        points = [ScatterPoint(x=100, y=0)]
        lines = render_scatter(points, height=8, width=20).splitlines()
        assert any(g in lines[8] for g in ".o#@")

    def test_x_log_scaling(self):
        points = [ScatterPoint(1, 50), ScatterPoint(10, 50),
                  ScatterPoint(100, 50)]
        text = render_scatter(points, height=4, width=21)
        # Three equidistant marks on a log axis, all in one row.
        marked_rows = [
            line for line in text.splitlines()
            if "|" in line and line.strip("| %0123456789-").strip()
        ]
        assert len(marked_rows) == 1
        body = marked_rows[0].split("|")[1]
        marks = [i for i, ch in enumerate(body) if ch != " "]
        assert len(marks) == 3
        gaps = [b - a for a, b in zip(marks, marks[1:])]
        assert abs(gaps[0] - gaps[1]) <= 1

    def test_density_glyphs_scale(self):
        dense = [ScatterPoint(10, 50)] * 50 + [ScatterPoint(1000, 50)]
        text = render_scatter(dense, height=6, width=30)
        assert "@" in text or "#" in text  # the dense cell
        assert "." in text                  # the sparse cell

    def test_title_and_axis(self):
        text = render_scatter([ScatterPoint(5, 5)], title="fig3")
        assert text.startswith("fig3")
        assert "references (log scale)" in text
