"""Tests for ASCII table rendering and the static layout helper."""

from __future__ import annotations

from repro.memory.layout import SegmentLayout, align_up
from repro.memory.static_layout import layout_sequential
from repro.reporting.tables import format_cell, render_table


class TestFormatCell:
    def test_floats_fixed_precision(self):
        assert format_cell(3.14159) == "3.14"
        assert format_cell(3.14159, precision=1) == "3.1"

    def test_bools(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_strings_and_ints(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_header_and_rows_aligned(self):
        text = render_table(["Name", "Val"], [("a", 1.0), ("bb", 22.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("Name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title_line(self):
        text = render_table(["X"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        text = render_table(["Name", "Val"], [("a", 5), ("b", 500)])
        lines = text.splitlines()
        assert lines[2].endswith("  5")
        assert lines[3].endswith("500")

    def test_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert len(text.splitlines()) == 2


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(16, 8) == 16

    def test_rounds_up(self):
        assert align_up(17, 8) == 24

    def test_invalid_alignment(self):
        import pytest

        with pytest.raises(ValueError):
            align_up(1, 0)


class TestLayoutSequential:
    def test_sequential_aligned_addresses(self):
        addresses = layout_sequential([("a", 10), ("b", 4)], base=0x100)
        assert addresses["a"] == 0x100
        assert addresses["b"] == 0x100 + 16

    def test_empty(self):
        assert layout_sequential([], base=0) == {}

    def test_no_overlap(self):
        items = [(f"v{i}", 3 + i * 7) for i in range(10)]
        addresses = layout_sequential(items, base=0)
        spans = sorted(
            (addresses[key], addresses[key] + size) for key, size in items
        )
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestSegmentLayout:
    def test_describe(self):
        text = SegmentLayout().describe()
        assert "text=" in text and "stack=" in text
