"""Tests for lifetime analysis and the trace validator."""

from __future__ import annotations

import pytest

from repro.analysis.lifetime import (
    LifetimeSink,
    summarize_lifetimes,
)
from repro.trace.events import Category, ObjectInfo, TraceError
from repro.trace.sinks import RecordingSink
from repro.trace.validate import ValidatingSink


def heap_info(obj_id: int, size: int = 32) -> ObjectInfo:
    return ObjectInfo(obj_id, Category.HEAP, size, f"h#{obj_id}")


class TestLifetimeSink:
    def test_span_measured_in_references(self):
        sink = LifetimeSink()
        sink.on_access(99, 0, 4, False, Category.GLOBAL)   # t=1
        sink.on_alloc(heap_info(1), ())
        for _ in range(5):
            sink.on_access(1, 0, 4, False, Category.HEAP)  # t=2..6
        sink.on_free(1)
        record = sink.lifetimes[1]
        assert record.born_at == 1
        assert record.died_at == 6
        assert record.references == 5
        assert record.span(sink.trace_length) == 5

    def test_never_freed_extends_to_trace_end(self):
        sink = LifetimeSink()
        sink.on_alloc(heap_info(1), ())
        for _ in range(10):
            sink.on_access(99, 0, 4, False, Category.GLOBAL)
        record = sink.lifetimes[1]
        assert record.died_at is None
        assert record.span(sink.trace_length) == 10

    def test_max_live_tracks_concurrency(self):
        sink = LifetimeSink()
        sink.on_alloc(heap_info(1), ())
        sink.on_alloc(heap_info(2), ())
        sink.on_free(1)
        sink.on_alloc(heap_info(3), ())
        assert sink.max_live == 2

    def test_summary_short_lived_share(self):
        sink = LifetimeSink()
        # Short-lived object: 2 refs of a 100-ref trace.
        sink.on_alloc(heap_info(1), ())
        sink.on_access(1, 0, 4, False, Category.HEAP)
        sink.on_access(1, 0, 4, False, Category.HEAP)
        sink.on_free(1)
        # Long-lived object spanning the rest.
        sink.on_alloc(heap_info(2), ())
        for _ in range(98):
            sink.on_access(2, 0, 4, False, Category.HEAP)
        sink.on_free(2)
        summary = summarize_lifetimes(sink, short_fraction=0.05)
        assert summary.objects == 2
        assert summary.short_lived_share == pytest.approx(50.0)
        assert summary.never_freed == 0

    def test_empty_summary(self):
        summary = summarize_lifetimes(LifetimeSink())
        assert summary.objects == 0
        assert summary.median_span == 0.0

    def test_deltablue_heap_is_mostly_short_lived(self):
        """The Figure 3 narrative, quantified on a real workload."""
        from repro.workloads import make_workload

        sink = LifetimeSink()
        workload = make_workload("deltablue")
        workload.run(sink, workload.train_input)
        summary = summarize_lifetimes(sink, short_fraction=0.05)
        assert summary.objects > 3000
        # Plan records die young; chain nodes live the whole run.  The
        # median heap object still lives a large fraction of the trace
        # (the chain), but hundreds of plan objects are short-lived.
        assert summary.short_lived_share > 10


class TestValidatingSink:
    def test_clean_trace_passes(self, toy_workload):
        recorder = RecordingSink()
        toy_workload.run(recorder, "train")
        validator = ValidatingSink(strict=False)
        recorder.replay(validator)
        assert validator.clean

    def test_forwards_to_inner_sink(self, toy_workload):
        recorder = RecordingSink()
        toy_workload.run(recorder, "train")
        inner = RecordingSink()
        validator = ValidatingSink(forward=inner)
        recorder.replay(validator)
        assert len(inner.events) == len(recorder.events)

    def test_access_to_unknown_object(self):
        sink = ValidatingSink()
        with pytest.raises(TraceError):
            sink.on_access(42, 0, 4, False, Category.GLOBAL)

    def test_out_of_bounds(self):
        sink = ValidatingSink()
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 16, "g"))
        with pytest.raises(TraceError):
            sink.on_access(1, 12, 8, False, Category.GLOBAL)

    def test_use_after_free(self):
        sink = ValidatingSink()
        sink.on_alloc(heap_info(1), ())
        sink.on_free(1)
        with pytest.raises(TraceError):
            sink.on_access(1, 0, 4, False, Category.HEAP)

    def test_double_free(self):
        sink = ValidatingSink()
        sink.on_alloc(heap_info(1), ())
        sink.on_free(1)
        with pytest.raises(TraceError):
            sink.on_free(1)

    def test_free_of_global(self):
        sink = ValidatingSink()
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 16, "g"))
        with pytest.raises(TraceError):
            sink.on_free(1)

    def test_category_mismatch(self):
        sink = ValidatingSink()
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 16, "g"))
        with pytest.raises(TraceError):
            sink.on_access(1, 0, 4, False, Category.HEAP)

    def test_duplicate_object_id(self):
        sink = ValidatingSink()
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 16, "g"))
        with pytest.raises(TraceError):
            sink.on_object(ObjectInfo(1, Category.GLOBAL, 16, "g2"))

    def test_lenient_mode_records_violations(self):
        sink = ValidatingSink(strict=False)
        sink.on_access(42, 0, 4, False, Category.GLOBAL)
        sink.on_free(43)
        assert not sink.clean
        assert [v.kind for v in sink.violations] == [
            "access-unknown", "free-unknown",
        ]

    def test_all_nine_workloads_validate(self):
        from repro.workloads import make_workload, workload_names

        for name in workload_names():
            workload = make_workload(name)
            validator = ValidatingSink(strict=True)
            workload.run(validator, workload.train_input)
