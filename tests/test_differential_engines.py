"""Differential fuzzing: fast engines vs their scalar reference twins.

The fixed parity suites check the batched cache kernel and the array
placement engine against their scalar baselines on the nine benchmark
workloads.  This harness widens that net with hypothesis-generated
inputs: random access streams over random cache geometries for the
simulators, and random :class:`~repro.workloads.synthetic.SyntheticSpec`
workloads for the placers.  Both directions assert *bit-identical*
results — equal :class:`~repro.cache.simulator.CacheStats` and equal
:class:`~repro.core.placement_map.PlacementMap` — because the fast
engines are specified as exact reimplementations, not approximations.

The suite is deterministic: ``derandomize=True`` derives every example
from the test's own source, so CI runs a fixed corpus (~100 cases) with
no deadline flakes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.batch import BatchCacheSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator
from repro.core.algorithm import CCDPPlacer
from repro.profiling.batch import profile_trace
from repro.trace.buffer import record_trace
from repro.trace.events import Category
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

_FUZZ_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Geometries sampled by the simulator fuzz: varied size/line/assoc,
#: including set-associative shapes that exercise the scalar fallback.
_CONFIGS = (
    CacheConfig(size=512, line_size=16, associativity=1),
    CacheConfig(size=1024, line_size=32, associativity=1),
    CacheConfig(size=8192, line_size=32, associativity=1),
    CacheConfig(size=1024, line_size=32, associativity=2),
    CacheConfig(size=2048, line_size=64, associativity=4),
)

_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 14) - 1),  # addr
        st.integers(min_value=1, max_value=96),  # size (spans lines)
        st.integers(min_value=0, max_value=7),  # obj_id
        st.sampled_from(list(Category)),  # category
        st.booleans(),  # is_store
    ),
    min_size=1,
    max_size=300,
)


def _run_scalar(config, events):
    sim = CacheSimulator(config)
    for addr, size, obj_id, category, is_store in events:
        sim.access(addr, size, obj_id, category, is_store)
    return sim.stats


def _run_batched(config, events, chunk):
    engine = BatchCacheSimulator(config)
    addr, size, obj_id, category, is_store = (
        np.array(column, dtype=dtype)
        for column, dtype in zip(
            zip(*events), (np.int64, np.int32, np.int32, np.int8, np.int8)
        )
    )
    for start in range(0, len(addr), chunk):
        stop = start + chunk
        engine.consume(
            addr[start:stop],
            size[start:stop],
            obj_id[start:stop],
            category[start:stop],
            is_store[start:stop],
        )
    return engine.stats


class TestSimulatorDifferential:
    @settings(max_examples=60, **_FUZZ_SETTINGS)
    @given(
        config=st.sampled_from(_CONFIGS),
        events=_events,
        chunk=st.sampled_from((1, 7, 64, 1 << 16)),
    )
    def test_batched_equals_scalar(self, config, events, chunk):
        """Chunked batched simulation == event-at-a-time scalar simulation.

        Odd chunk sizes split the stream mid-run, so the kernel's carried
        state (resident tags, dirty bits, per-set order) is exercised
        across chunk boundaries, not just within one consume call.
        """
        scalar = _run_scalar(config, events)
        batched = _run_batched(config, events, chunk)
        assert batched == scalar

    @settings(max_examples=20, **_FUZZ_SETTINGS)
    @given(events=_events)
    def test_parity_mode_self_checks(self, events):
        """The built-in parity shadow agrees on fuzzed streams too."""
        config = CacheConfig(size=1024, line_size=32, associativity=1)
        shadowed = BatchCacheSimulator(config, parity=True)
        addr, size, obj_id, category, is_store = (
            np.array(column, dtype=dtype)
            for column, dtype in zip(
                zip(*events), (np.int64, np.int32, np.int32, np.int8, np.int8)
            )
        )
        shadowed.consume(addr, size, obj_id, category, is_store)
        shadowed.assert_parity()


_specs = st.builds(
    SyntheticSpec,
    hot_globals=st.integers(min_value=1, max_value=6),
    hot_size=st.sampled_from((64, 256, 1024)),
    cold_spacer=st.sampled_from((0, 512)),
    small_cluster=st.integers(min_value=0, max_value=4),
    iterations=st.integers(min_value=60, max_value=240),
    heap_churn=st.integers(min_value=0, max_value=2),
    heap_persistent=st.integers(min_value=0, max_value=3),
    heap_object_bytes=st.sampled_from((16, 48)),
    stack_frame_bytes=st.sampled_from((32, 96)),
    constant_bytes=st.sampled_from((0, 128)),
)


class TestPlacerDifferential:
    @settings(max_examples=25, **_FUZZ_SETTINGS)
    @given(spec=_specs, place_heap=st.booleans())
    def test_array_equals_scalar(self, spec, place_heap):
        """Array conflict-scan engine == scalar merger, map for map.

        PlacementMap equality covers the global layout, segment bases,
        the heap allocation table, and the placement stats (whose timing
        fields are excluded from comparison by construction).
        """
        workload = SyntheticWorkload(spec)
        trace = record_trace(workload, workload.train_input)
        profile = profile_trace(trace)
        config = CacheConfig(size=1024, line_size=32, associativity=1)
        placements = {}
        for engine in ("array", "scalar"):
            placer = CCDPPlacer(
                profile,
                cache_config=config,
                place_heap=place_heap,
                engine=engine,
            )
            placements[engine] = placer.place()
        assert placements["array"] == placements["scalar"]

    @settings(max_examples=8, **_FUZZ_SETTINGS)
    @given(spec=_specs)
    def test_batched_profile_equals_scalar_profile(self, spec):
        """profile_trace over a recording == live ProfilerSink profiling."""
        from repro.profiling.profiler import ProfilerSink

        workload = SyntheticWorkload(spec)
        trace = record_trace(workload, workload.train_input)
        batched = profile_trace(trace)
        sink = ProfilerSink()
        workload.run(sink, workload.train_input)
        scalar = sink.profile
        assert batched.trg == scalar.trg
        assert batched.total_accesses == scalar.total_accesses
        assert set(batched.entities) == set(scalar.entities)
        assert batched.popularity() == scalar.popularity()
        assert batched.entity_affinity() == scalar.entity_affinity()
