"""Batched-engine parity: vectorized kernels == scalar simulator, exactly.

The batched engine (:mod:`repro.cache.batch`, :mod:`repro.profiling.batch`,
:func:`repro.runtime.driver.measure_trace`) is only admissible because it
is *bit-identical* to the scalar pipeline — every paper table must be
reproducible on either engine.  These tests pin that contract on real
workloads (deltablue, espresso), a synthetic workload with heap churn,
and three cache geometries: the paper's 8K/32B direct-mapped cache, a
larger direct-mapped geometry, and a 2-way set-associative geometry that
exercises the scalar fallback inside :class:`BatchCacheSimulator`.
"""

from __future__ import annotations

import pytest

from repro.cache.batch import BatchCacheSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator
from repro.profiling.batch import profile_trace
from repro.profiling.profiler import ProfilerSink
from repro.runtime.driver import build_placement, measure, measure_trace
from repro.runtime.resolvers import CCDPResolver, NaturalResolver, RandomResolver
from repro.trace.buffer import record_trace
from repro.workloads import make_workload
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

GEOMETRIES = [
    pytest.param(CacheConfig(size=8192, line_size=32, associativity=1), id="8k-32B-direct"),
    pytest.param(CacheConfig(size=16384, line_size=64, associativity=1), id="16k-64B-direct"),
    pytest.param(CacheConfig(size=8192, line_size=32, associativity=2), id="8k-32B-2way"),
]


def synthetic_workload() -> SyntheticWorkload:
    """A small synthetic program with heap churn and aliased globals."""
    return SyntheticWorkload(
        SyntheticSpec(
            hot_globals=3,
            hot_size=512,
            cold_spacer=7680,
            small_cluster=4,
            iterations=400,
            heap_churn=3,
            heap_persistent=2,
        )
    )


def workload_under_test(name: str):
    if name == "synthetic":
        return synthetic_workload()
    return make_workload(name)


WORKLOADS = ["deltablue", "espresso", "synthetic"]


@pytest.mark.parametrize("config", GEOMETRIES)
@pytest.mark.parametrize("name", WORKLOADS)
def test_measure_trace_matches_scalar_measure(name, config):
    """Batched trace measurement == scalar per-event measurement."""
    workload = workload_under_test(name)
    input_name = workload.train_input
    trace = record_trace(workload_under_test(name), input_name)
    batched = measure_trace(trace, NaturalResolver(), config)
    scalar = measure(
        workload_under_test(name),
        input_name,
        NaturalResolver(),
        config,
        engine="scalar",
    )
    assert batched.cache == scalar.cache
    assert batched.cache.accesses > 0
    assert batched.cache.misses > 0


@pytest.mark.parametrize("config", GEOMETRIES)
@pytest.mark.parametrize("name", WORKLOADS)
def test_streaming_batch_sink_matches_scalar(name, config):
    """The streaming batched engine (live run) == scalar measurement."""
    batched = measure(
        workload_under_test(name),
        workload_under_test(name).train_input,
        RandomResolver(seed=99),
        config,
    )
    scalar = measure(
        workload_under_test(name),
        workload_under_test(name).train_input,
        RandomResolver(seed=99),
        config,
        engine="scalar",
    )
    assert batched.cache == scalar.cache


@pytest.mark.parametrize("name", WORKLOADS)
def test_parity_mode_asserts_clean(name):
    """The kernel's built-in shadow-simulator parity harness passes."""
    workload = workload_under_test(name)
    trace = record_trace(workload, workload.train_input)
    result = measure_trace(
        trace,
        NaturalResolver(),
        CacheConfig(size=8192, line_size=32, associativity=1),
        parity=True,
    )
    assert result.cache.accesses == trace.events or result.cache.accesses > 0


@pytest.mark.parametrize("config", GEOMETRIES)
def test_parity_under_ccdp_placement(config):
    """Parity also holds when replaying under a CCDP placement map."""
    workload = workload_under_test("deltablue")
    trace = record_trace(workload, workload.train_input)
    _profile, placement = build_placement(
        workload_under_test("deltablue"), workload.train_input, config
    )
    batched = measure_trace(trace, CCDPResolver(placement), config)
    scalar = measure(
        workload_under_test("deltablue"),
        workload.train_input,
        CCDPResolver(placement),
        config,
        engine="scalar",
    )
    assert batched.cache == scalar.cache


@pytest.mark.parametrize("name", WORKLOADS)
def test_batched_profile_equals_scalar_profile(name):
    """profile_trace == live ProfilerSink, down to dict insertion order."""
    workload = workload_under_test(name)
    input_name = workload.train_input
    trace = record_trace(workload, input_name)
    batched = profile_trace(trace)

    sink = ProfilerSink()
    workload_under_test(name).run(sink, input_name)
    scalar = sink.profile

    # TRG edges: same weights AND same insertion order (downstream
    # tie-breaking iterates the dict).
    assert list(batched.trg.items()) == list(scalar.trg.items())
    assert batched.total_accesses == scalar.total_accesses
    assert batched.alloc_adjacency == scalar.alloc_adjacency
    assert set(batched.entities) == set(scalar.entities)
    for eid, scalar_entity in scalar.entities.items():
        batched_entity = batched.entities[eid]
        assert batched_entity.refs == scalar_entity.refs
        assert batched_entity.first_access == scalar_entity.first_access
        assert batched_entity.last_access == scalar_entity.last_access
        assert batched_entity.size == scalar_entity.size
        assert batched_entity.collided == scalar_entity.collided
    # Derived reductions (precomputed on the batched side) match too.
    assert list(batched.popularity().items()) == list(scalar.popularity().items())
    assert list(batched.entity_affinity().items()) == list(
        scalar.entity_affinity().items()
    )


def test_parity_mode_catches_divergence():
    """A corrupted kernel state must trip the parity assertion."""
    engine = BatchCacheSimulator(
        CacheConfig(size=8192, line_size=32, associativity=1), parity=True
    )
    import numpy as np

    addr = np.arange(0, 64 * 32, 32, dtype=np.int64)
    ones = np.ones(len(addr), dtype=np.int64)
    zeros = np.zeros(len(addr), dtype=np.int64)
    engine.consume(addr, ones * 4, zeros, zeros, zeros)
    engine.assert_parity()  # clean so far
    engine._kernel.misses += 1  # corrupt
    engine._stats = None  # drop the memoized stats snapshot
    with pytest.raises(AssertionError):
        engine.assert_parity()


def test_direct_mapped_scalar_fast_path_matches_lru_path():
    """CacheSimulator's associativity==1 fast path == generic LRU path."""
    config = CacheConfig(size=4096, line_size=32, associativity=1)
    fast = CacheSimulator(config)
    # classify=True forces the general path (three-Cs bookkeeping).
    slow = CacheSimulator(config, classify=True)
    workload = workload_under_test("synthetic")
    trace = record_trace(workload, workload.train_input)

    from repro.runtime.replay import ReplaySink

    for sim in (fast, slow):
        trace.replay(ReplaySink(NaturalResolver(), sim))
    assert fast.stats.accesses == slow.stats.accesses
    assert fast.stats.misses == slow.stats.misses
    assert fast.stats.writebacks == slow.stats.writebacks
    assert fast.stats.misses_by_object == slow.stats.misses_by_object
