"""Tests for the time-sampled TRG profiler."""

from __future__ import annotations

import pytest

from repro.core.algorithm import CCDPPlacer
from repro.profiling.profiler import ProfilerSink
from repro.profiling.sampling import SamplingProfilerSink, sampled_profile
from repro.runtime.driver import measure
from repro.runtime.resolvers import CCDPResolver


class TestSamplingMechanics:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfilerSink(window=0, period=10)
        with pytest.raises(ValueError):
            SamplingProfilerSink(window=20, period=10)

    def test_full_window_equals_exact_profiler(self, toy_workload, small_cache):
        exact = ProfilerSink(cache_config=small_cache)
        toy_workload.run(exact, toy_workload.train_input)
        sampled = SamplingProfilerSink(
            window=10, period=10, cache_config=small_cache
        )
        toy_workload.run(sampled, toy_workload.train_input)
        assert sampled.profile.trg == exact.profile.trg
        assert sampled.sampling_ratio == pytest.approx(1.0)

    def test_sampling_ratio_matches_pattern(self, toy_workload, small_cache):
        sink = SamplingProfilerSink(
            window=100, period=400, cache_config=small_cache
        )
        toy_workload.run(sink, toy_workload.train_input)
        assert sink.sampling_ratio == pytest.approx(0.25, abs=0.02)

    def test_name_profile_is_exact_despite_sampling(
        self, toy_workload, small_cache
    ):
        exact = ProfilerSink(cache_config=small_cache)
        toy_workload.run(exact, toy_workload.train_input)
        sink = SamplingProfilerSink(
            window=50, period=500, cache_config=small_cache
        )
        toy_workload.run(sink, toy_workload.train_input)
        for eid, entity in exact.profile.entities.items():
            assert sink.profile.entities[eid].refs == entity.refs

    def test_weights_scaled_to_full_run_magnitude(self, toy_workload, small_cache):
        exact = ProfilerSink(cache_config=small_cache)
        toy_workload.run(exact, toy_workload.train_input)
        sink = SamplingProfilerSink(
            window=200, period=400, cache_config=small_cache
        )
        toy_workload.run(sink, toy_workload.train_input)
        exact_total = sum(exact.profile.trg.values())
        sampled_total = sum(sink.profile.trg.values())
        assert sampled_total == pytest.approx(exact_total, rel=0.5)

    def test_fewer_edges_than_exhaustive(self, toy_workload, small_cache):
        exact = ProfilerSink(cache_config=small_cache)
        toy_workload.run(exact, toy_workload.train_input)
        sink = SamplingProfilerSink(
            window=20, period=400, cache_config=small_cache
        )
        toy_workload.run(sink, toy_workload.train_input)
        assert len(sink.profile.trg) <= len(exact.profile.trg)


class TestSampledPlacementQuality:
    def test_sampled_profile_still_yields_good_placement(
        self, toy_workload, small_cache
    ):
        """The paper's hope: sampling keeps most of the placement value."""
        profile = sampled_profile(
            toy_workload, window=100, period=300, cache_config=small_cache
        )
        placement = CCDPPlacer(profile, small_cache).place()
        from repro.runtime.resolvers import NaturalResolver

        natural = measure(
            toy_workload, toy_workload.test_input,
            NaturalResolver(), small_cache,
        ).cache.miss_rate
        sampled = measure(
            toy_workload, toy_workload.test_input,
            CCDPResolver(placement), small_cache,
        ).cache.miss_rate
        assert sampled <= natural * 1.05
