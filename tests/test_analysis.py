"""Tests for the analysis package: paging, miss-rate rows, heap scatter."""

from __future__ import annotations

import pytest

from repro.analysis.heap_scatter import (
    heap_scatter,
    scatter_correlation,
)
from repro.analysis.missrates import (
    MissRateRow,
    PlacementMissRates,
    average_reduction,
    average_row,
)
from repro.analysis.paging import PageTracker, PagingSummary
from repro.cache.simulator import CacheStats
from repro.trace.events import Category
from repro.trace.stats import WorkloadStats


class TestPageTracker:
    def test_counts_distinct_pages(self):
        tracker = PageTracker(page_size=4096)
        tracker.touch(0, 4)
        tracker.touch(100, 4)
        tracker.touch(4096, 4)
        assert tracker.total_pages == 2
        assert tracker.references == 3

    def test_spanning_touch_counts_both_pages(self):
        tracker = PageTracker(page_size=4096)
        tracker.touch(4094, 4)
        assert tracker.total_pages == 2

    def test_working_set_constant_stream(self):
        tracker = PageTracker(page_size=4096)
        for _ in range(1000):
            tracker.touch(0, 4)
        assert tracker.working_set() == pytest.approx(1.0)

    def test_working_set_alternating_pages(self):
        tracker = PageTracker(page_size=4096)
        for index in range(1000):
            tracker.touch((index % 2) * 4096, 4)
        assert tracker.working_set() == pytest.approx(2.0)

    def test_working_set_phase_change(self):
        tracker = PageTracker(page_size=4096)
        for index in range(500):
            tracker.touch(0, 4)
        for index in range(500):
            tracker.touch((index % 8) * 4096, 4)
        ws = tracker.working_set(window_fraction=0.01)
        assert 1.0 < ws < 8.0

    def test_empty_tracker(self):
        tracker = PageTracker()
        assert tracker.working_set() == 0.0
        assert PagingSummary.from_tracker(tracker).total_pages == 0

    def test_window_of_one(self):
        tracker = PageTracker()
        tracker.touch(0, 4)
        assert tracker.working_set(window_fraction=0.0001) == pytest.approx(1.0)


class TestMissRateRows:
    def _stats(self, misses_per_cat):
        stats = CacheStats()
        stats.accesses = 1000
        stats.misses = sum(misses_per_cat.values())
        for category, count in misses_per_cat.items():
            stats.misses_by_category[category] = count
        return stats

    def test_from_stats_columns(self):
        stats = self._stats(
            {Category.STACK: 10, Category.GLOBAL: 50, Category.HEAP: 30,
             Category.CONST: 10}
        )
        rates = PlacementMissRates.from_stats(stats)
        assert rates.d_miss == pytest.approx(10.0)
        assert rates.global_ == pytest.approx(5.0)
        assert sum((rates.stack, rates.global_, rates.heap, rates.const)) == (
            pytest.approx(rates.d_miss)
        )

    def test_pct_reduction(self):
        row = MissRateRow(
            program="x",
            original=PlacementMissRates(10, 0, 10, 0, 0),
            ccdp=PlacementMissRates(6, 0, 6, 0, 0),
        )
        assert row.pct_reduction == pytest.approx(40.0)

    def test_zero_baseline_reduction_is_zero(self):
        row = MissRateRow(
            program="x",
            original=PlacementMissRates(0, 0, 0, 0, 0),
            ccdp=PlacementMissRates(0, 0, 0, 0, 0),
        )
        assert row.pct_reduction == 0.0

    def test_average_row(self):
        rows = [
            MissRateRow(
                "a",
                PlacementMissRates(10, 1, 9, 0, 0),
                PlacementMissRates(5, 1, 4, 0, 0),
            ),
            MissRateRow(
                "b",
                PlacementMissRates(20, 2, 18, 0, 0),
                PlacementMissRates(10, 0, 10, 0, 0),
            ),
        ]
        average = average_row(rows)
        assert average.original.d_miss == pytest.approx(15.0)
        assert average.ccdp.d_miss == pytest.approx(7.5)
        assert average_reduction(rows) == pytest.approx(50.0)

    def test_average_of_nothing_raises(self):
        with pytest.raises(ValueError):
            average_row([])


class TestHeapScatter:
    def _inputs(self):
        workload_stats = WorkloadStats()
        cache_stats = CacheStats()
        # Object 1: hot, large, low miss.  Object 2: tiny, few refs, high
        # miss.  Object 3: global (excluded).
        workload_stats.object_categories = {
            1: Category.HEAP,
            2: Category.HEAP,
            3: Category.GLOBAL,
        }
        workload_stats.object_sizes = {1: 4096, 2: 24, 3: 64}
        workload_stats.refs_by_object = {1: 1000, 2: 4, 3: 500}
        cache_stats.accesses_by_object = {1: 1000, 2: 4, 3: 500}
        cache_stats.misses_by_object = {1: 10, 2: 3, 3: 100}
        return workload_stats, cache_stats

    def test_scatter_excludes_non_heap(self):
        points = heap_scatter(*self._inputs())
        assert {p.obj_id for p in points} == {1, 2}

    def test_point_values(self):
        points = {p.obj_id: p for p in heap_scatter(*self._inputs())}
        assert points[2].miss_rate == pytest.approx(75.0)
        assert points[2].references == 4
        assert points[1].miss_rate == pytest.approx(1.0)

    def test_shape_summary(self):
        points = heap_scatter(*self._inputs())
        shape = scatter_correlation(points, high_miss_threshold=25.0)
        assert shape.num_objects == 2
        assert shape.median_refs_high_miss == 4
        assert shape.median_refs_low_miss == 1000
        assert shape.mean_size_high_miss == pytest.approx(24.0)

    def test_empty_scatter(self):
        shape = scatter_correlation([])
        assert shape.num_objects == 0
        assert shape.high_miss_share_of_heap_misses == 0.0
