"""Hostile-input and failure-surface coverage for the serve daemon.

Every test here attacks the daemon's front door — malformed framing,
oversized bodies, dead peers, poisoned uploads, queue pressure, faults
injected into served jobs — and then proves the daemon is still healthy.
The invariant under test is always the same: a bad client or a bad job
gets an error *response*; the process never gets an error.
"""

from __future__ import annotations

import json
import socket
import struct
import time

import pytest

from repro.serve import Daemon, ServeClient, ServeConfig
from repro.serve import protocol
from repro.trace.buffer import record_trace


@pytest.fixture
def daemon(tmp_path):
    """A small daemon: tight queue, tiny batches, 256 KiB body ceiling."""
    instance = Daemon(
        ServeConfig(
            cache_dir=str(tmp_path / "serve-store"),
            announce=False,
            queue_depth=2,
            batch_max=1,
            max_body_bytes=256 * 1024,
            drain_timeout=10.0,
        )
    ).start()
    yield instance
    if instance.state != "stopped":
        instance.stop()


def _raw(port: int, data: bytes) -> bytes:
    """Send raw bytes, return whatever the daemon answers before closing."""
    with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
        sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        chunks = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks += chunk
    return chunks


def _wait_counter(daemon: Daemon, name: str, timeout: float = 2.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = daemon.telemetry.counters.get(name, 0)
        if value:
            return value
        time.sleep(0.02)
    return daemon.telemetry.counters.get(name, 0)


def test_malformed_request_line_gets_400(daemon):
    response = _raw(daemon.port, b"NONSENSE\r\n\r\n")
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"malformed request line" in response
    assert ServeClient(port=daemon.port).health()["ok"]


def test_malformed_header_gets_400(daemon):
    response = _raw(
        daemon.port, b"GET /healthz HTTP/1.1\r\nno colon here\r\n\r\n"
    )
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"malformed header" in response


def test_bad_json_body_gets_400_and_daemon_survives(daemon):
    body = b"{definitely not json"
    head = (
        f"POST /v1/jobs HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode()
    response = _raw(daemon.port, head + body)
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"not valid JSON" in response
    assert ServeClient(port=daemon.port).ready()


def test_validation_rejections_are_400(daemon):
    client = ServeClient(port=daemon.port)
    cases = [
        ({"kind": "transmute"}, "unknown job kind"),
        ({"kind": "placement"}, "need a workload"),
        ({"kind": "placement", "workload": "ghost"}, "need an input name"),
        (
            {"kind": "placement", "workload": "ghost", "input": "main"},
            "unknown workload",
        ),
        (
            {"kind": "placement", "workload": "compress", "cache": [0, 32, 1]},
            "cache geometry",
        ),
        ({"kind": "experiment", "workload": "ghost"}, "registry workload"),
        ({"kind": "sleep", "seconds": 999}, "sleep seconds"),
    ]
    for payload, needle in cases:
        status, answer = client.try_submit(payload)
        assert status == 400, payload
        assert needle in answer["error"], payload


def test_unknown_route_404_and_wrong_method_405(daemon):
    client = ServeClient(port=daemon.port)
    status, _ = client.request("GET", "/v1/nothing/here")
    assert status == 404
    status, _ = client.request("POST", "/healthz")
    assert status == 405
    status, _ = client.request("GET", "/v1/jobs/ffffffffffff")
    assert status == 404  # well-formed id, no such job


def test_oversized_body_gets_413_without_reading_it(daemon):
    # Declare a body far past the 64 KiB ceiling but never send it: the
    # daemon must answer 413 off the headers alone and close.
    head = (
        "POST /v1/traces?workload=x&input=y HTTP/1.1\r\n"
        "Content-Length: 10485760\r\n\r\n"
    ).encode()
    with socket.create_connection(("127.0.0.1", daemon.port), timeout=5.0) as sock:
        sock.sendall(head)
        response = sock.recv(65536)
    assert response.startswith(b"HTTP/1.1 413 ")
    assert b"exceeds" in response
    assert ServeClient(port=daemon.port).ready()


def test_mid_upload_disconnect_is_survived(daemon):
    head = (
        "POST /v1/traces?workload=x&input=y HTTP/1.1\r\n"
        "Content-Length: 5000\r\n\r\n"
    ).encode()
    sock = socket.create_connection(("127.0.0.1", daemon.port), timeout=5.0)
    sock.sendall(head + b"\x00" * 100)  # 100 of the promised 5000 bytes
    sock.close()
    assert _wait_counter(daemon, "serve.http.disconnects") >= 1
    assert ServeClient(port=daemon.port).ready()


def test_upload_with_bad_magic_gets_400(daemon):
    client = ServeClient(port=daemon.port)
    status, payload = client.request(
        "POST",
        "/v1/traces?workload=x&input=y",
        body=b"NOPE" + b"\x00" * 64,
        content_type="application/octet-stream",
    )
    assert status == 400
    assert "magic" in payload["error"]


def test_upload_fingerprint_mismatch_gets_400(daemon, toy_workload):
    trace = record_trace(toy_workload, "train")
    try:
        body = protocol.pack_trace_upload(trace)
    finally:
        trace.close()
    # Re-frame the envelope with a forged fingerprint declaration.
    header = struct.Struct("<4sI")
    _magic, meta_len = header.unpack_from(body)
    meta = json.loads(body[header.size : header.size + meta_len])
    meta["fingerprint"] = "0" * len(meta["fingerprint"])
    forged_meta = json.dumps(meta, sort_keys=True).encode()
    forged = (
        header.pack(protocol.UPLOAD_MAGIC, len(forged_meta))
        + forged_meta
        + body[header.size + meta_len :]
    )
    client = ServeClient(port=daemon.port)
    status, payload = client.request(
        "POST",
        "/v1/traces?workload=toyprog&input=train",
        body=forged,
        content_type="application/octet-stream",
    )
    assert status == 400
    assert "fingerprint mismatch" in payload["error"]
    # The poisoned upload left nothing behind and the daemon still works.
    uploads = daemon.store.root / "uploads"
    assert not uploads.exists() or list(uploads.iterdir()) == []
    assert ServeClient(port=daemon.port).ready()


def test_queue_full_answers_429(daemon):
    client = ServeClient(port=daemon.port)
    # One sleep occupies the dispatcher, two more fill the depth-2 queue;
    # a further submit must bounce with 429 rather than buffer unbounded.
    statuses = []
    for _ in range(6):
        status, payload = client.try_submit({"kind": "sleep", "seconds": 0.5})
        statuses.append(status)
        if status == 429:
            assert "queue is full" in payload["error"]
            assert payload["queue_depth"] == 2
            break
    assert 429 in statuses, f"never saw backpressure: {statuses}"
    assert daemon.telemetry.counters.get("serve.http.backpressure", 0) >= 1
    # Accepted jobs still finish once the queue drains.
    accepted = [s for s in statuses if s == 202]
    assert accepted, "expected some submissions to be accepted"


def test_injected_fault_fails_the_job_not_the_daemon(daemon, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "crash@0#*")
    client = ServeClient(port=daemon.port)
    record = client.run(
        "experiment", workload="mgrid", same_input=True, timeout=120.0
    )
    assert record["state"] == "failed"
    assert record["error"]
    assert ServeClient(port=daemon.port).ready()
    metrics = client.metrics()
    assert metrics["jobs"]["failed"] >= 1

    # With the fault plan cleared the daemon serves the next job fine.
    monkeypatch.delenv("REPRO_FAULTS")
    follow_up = client.run("sleep", seconds=0.01)
    assert follow_up["state"] == "done"


def test_draining_daemon_rejects_new_work_but_answers_polls(daemon):
    client = ServeClient(port=daemon.port)
    job_id = client.submit("sleep", seconds=1.5)
    client.shutdown()
    status, payload = client.try_submit({"kind": "sleep", "seconds": 0.01})
    assert status == 503
    assert "draining" in payload["error"]
    # A status poll still works while the drain runs (the listener stays
    # open for exactly this), and the already-accepted job completes
    # before the daemon exits instead of being dropped.
    poll = client.status(job_id)
    assert poll["state"] in ("queued", "running", "done")
    daemon.stop()
    assert daemon.state == "stopped"
    record = daemon.table.get(job_id)
    assert record is not None and record.state == "done"
