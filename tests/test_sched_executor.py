"""DAG executor end-to-end: equality, warm resume, fault handling.

The graph-shaped dispatcher must be invisible in the results: whatever
:func:`repro.runtime.parallel.run_experiments` computes, the DAG path
must reproduce bit-for-bit — store-less, cold-with-store, and warm
(where it additionally schedules *zero* stage executions).  Failures
ride the same retry/best-effort machinery as the coarse fan-out.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import clear_cache
from repro.runtime import faults, parallel
from repro.runtime.faults import FaultToleranceError, RetryPolicy
from repro.runtime.parallel import ExperimentSpec, run_experiments
from repro.sched.executor import last_summary, run_experiments_dag
from repro.store import ArtifactStore, use_store
from tests.test_store_pipeline import assert_same_experiment


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    yield
    clear_cache()


def _specs():
    return [
        ExperimentSpec(workload="deltablue", same_input=True),
        ExperimentSpec(workload="deltablue", same_input=False),
    ]


class TestEquality:
    def test_storeless_inline_matches_coarse_path(self):
        direct = run_experiments(_specs(), jobs=1)
        clear_cache()
        via_dag, graph, summary = run_experiments_dag(_specs(), jobs=1)
        for first, second in zip(direct, via_dag):
            assert_same_experiment(first, second)
        assert summary.executed > 0
        assert summary.failed == 0
        # Table 2 and Table 4 share the training trace/profile/placement.
        assert summary.deduped == 3

    def test_cold_store_run_matches_coarse_path(self, tmp_path):
        with use_store(ArtifactStore(tmp_path / "a")):
            direct = run_experiments(_specs(), jobs=1)
        clear_cache()
        with use_store(ArtifactStore(tmp_path / "b")):
            via_dag, _, summary = run_experiments_dag(_specs(), jobs=1)
        for first, second in zip(direct, via_dag):
            assert_same_experiment(first, second)
        assert summary.pruned == 0

    def test_last_summary_tracks_most_recent_run(self):
        _, _, summary = run_experiments_dag(_specs()[:1], jobs=1)
        assert last_summary() is summary


class TestWarmResume:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        root = tmp_path / "store"
        with use_store(ArtifactStore(root)):
            cold, _, cold_summary = run_experiments_dag(_specs(), jobs=1)
        assert cold_summary.executed > 0
        clear_cache()
        warm_store = ArtifactStore(root)
        with use_store(warm_store):
            warm, _, warm_summary = run_experiments_dag(_specs(), jobs=1)
        assert warm_summary.executed == 0
        assert warm_summary.pruned > 0
        assert warm_summary.failed == 0
        # One counter source of truth: a fully-warm resume is all hits.
        assert warm_store.counters.misses == 0
        assert warm_store.counters.hits > 0
        for first, second in zip(cold, warm):
            assert_same_experiment(first, second)

    def test_partially_warm_graph_runs_only_the_cold_jobs(self, tmp_path):
        root = tmp_path / "store"
        with use_store(ArtifactStore(root)):
            run_experiments_dag(_specs()[:1], jobs=1)
        clear_cache()
        with use_store(ArtifactStore(root)):
            _, graph, summary = run_experiments_dag(_specs(), jobs=1)
        # The table-2 half is warm; only table-4's extra jobs execute.
        assert summary.pruned > 0
        assert 0 < summary.executed < summary.total
        assert summary.failed == 0


class TestFaults:
    def test_transient_fault_heals_via_retry(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@0")
        policy = RetryPolicy(backoff=0.0)
        results, _, summary = run_experiments_dag(
            _specs()[:1], jobs=1, policy=policy
        )
        assert results[0] is not None
        assert summary.failed == 0

    def test_permanent_fault_cancels_downstream_best_effort(
        self, monkeypatch
    ):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@0#*")
        policy = RetryPolicy(max_retries=1, backoff=0.0, best_effort=True)
        results, graph, summary = run_experiments_dag(
            _specs()[:1], jobs=1, policy=policy
        )
        assert results == [None]
        assert summary.failed == 1
        assert summary.cancelled >= 1
        report = parallel.last_fanout_report()
        assert report is not None
        assert [f.label for f in report.failures] == ["deltablue"]

    def test_permanent_fault_raises_under_fail_fast(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@0#*")
        policy = RetryPolicy(max_retries=0, backoff=0.0, best_effort=False)
        with pytest.raises(FaultToleranceError):
            run_experiments_dag(_specs()[:1], jobs=1, policy=policy)
