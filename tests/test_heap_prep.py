"""Unit tests for Phase 1 heap preprocessing (bins + demotion)."""

from __future__ import annotations

from repro.core.heap_prep import preprocess_heap_objects
from repro.profiling.profile_data import Entity, Profile
from repro.trace.events import Category


def heap_entity(eid, name, allocs=3, collided=False, size=32) -> Entity:
    return Entity(
        eid=eid,
        category=Category.HEAP,
        key=f"h:{name:x}",
        size=size,
        heap_name=name,
        alloc_count=allocs,
        collided=collided,
    )


def make_profile(entities, adjacency=None, trg=None) -> Profile:
    profile = Profile(chunk_size=256)
    for entity in entities:
        profile.entities[entity.eid] = entity
    profile.alloc_adjacency = adjacency or {}
    profile.trg = trg or {}
    return profile


class TestBinning:
    def test_allocation_adjacency_groups_names(self):
        profile = make_profile(
            [heap_entity(1, 0xA), heap_entity(2, 0xB), heap_entity(3, 0xC)],
            adjacency={(0xA, 0xB): 5},
        )
        result = preprocess_heap_objects(profile, set())
        assert result.bin_of_name[0xA] == result.bin_of_name[0xB]
        # 0xC allocated 3 times -> still gets its own bin.
        assert result.bin_of_name[0xC] != result.bin_of_name[0xA]

    def test_trg_affinity_groups_names(self):
        profile = make_profile(
            [heap_entity(1, 0xA), heap_entity(2, 0xB)],
            trg={((1, 0), (2, 0)): 9},
        )
        result = preprocess_heap_objects(profile, set())
        assert result.bin_of_name[0xA] == result.bin_of_name[0xB]

    def test_below_threshold_not_grouped(self):
        profile = make_profile(
            [heap_entity(1, 0xA), heap_entity(2, 0xB)],
            adjacency={(0xA, 0xB): 1},
        )
        result = preprocess_heap_objects(profile, set(), locality_threshold=2)
        assert result.bin_of_name[0xA] != result.bin_of_name[0xB]

    def test_single_allocation_singletons_stay_default(self):
        profile = make_profile([heap_entity(1, 0xA, allocs=1)])
        result = preprocess_heap_objects(profile, set())
        assert 0xA not in result.bin_of_name
        assert result.bin_count == 0

    def test_bin_cap_respected(self):
        entities = [heap_entity(i, 0x100 + i) for i in range(30)]
        profile = make_profile(entities)
        result = preprocess_heap_objects(profile, set(), max_bins=4)
        assert result.bin_count <= 4
        assert all(tag < 4 for tag in result.bin_of_name.values())

    def test_biggest_groups_win_limited_bins(self):
        hot = heap_entity(1, 0xA, allocs=100)
        cold = heap_entity(2, 0xB, allocs=2)
        profile = make_profile([hot, cold])
        result = preprocess_heap_objects(profile, set(), max_bins=1)
        assert result.bin_of_name.get(0xA) == 0
        assert 0xB not in result.bin_of_name


class TestDemotion:
    def test_collided_names_demoted_from_popular(self):
        collided = heap_entity(1, 0xA, collided=True)
        clean = heap_entity(2, 0xB)
        profile = make_profile([collided, clean])
        popular = {1, 2}
        result = preprocess_heap_objects(profile, popular)
        assert 1 not in popular
        assert 1 in result.demoted_entities
        assert result.placeable_heap_entities == [2]

    def test_collided_names_keep_bin_tags(self):
        collided_a = heap_entity(1, 0xA, collided=True)
        collided_b = heap_entity(2, 0xB, collided=True)
        profile = make_profile(
            [collided_a, collided_b], adjacency={(0xA, 0xB): 5}
        )
        result = preprocess_heap_objects(profile, {1, 2})
        assert 0xA in result.bin_of_name
        assert 0xB in result.bin_of_name

    def test_unpopular_unique_names_not_placeable(self):
        entity = heap_entity(1, 0xA)
        profile = make_profile([entity])
        result = preprocess_heap_objects(profile, set())
        assert result.placeable_heap_entities == []

    def test_no_heap_entities(self):
        profile = make_profile([])
        result = preprocess_heap_objects(profile, set())
        assert result.bin_count == 0
        assert not result.bin_of_name
