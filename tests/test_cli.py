"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _parse_cache, build_parser, main


class TestParser:
    def test_cache_parsing(self):
        config = _parse_cache("4096:64:2")
        assert (config.size, config.line_size, config.associativity) == (
            4096, 64, 2
        )

    def test_cache_parsing_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_cache("nope")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_cache("1000:32:1")  # invalid geometry

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "doom"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "m88ksim" in out and "heap-placed" in out

    def test_stats(self, capsys):
        assert main(["stats", "mgrid"]) == 0
        out = capsys.readouterr().out
        assert "instructions:" in out
        assert "global" in out

    def test_profile_place_pipeline(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        placement_path = tmp_path / "m.json"
        assert main(["profile", "go", "-o", str(profile_path)]) == 0
        assert profile_path.exists()
        assert main([
            "place", "--profile", str(profile_path),
            "-o", str(placement_path),
        ]) == 0
        assert placement_path.exists()
        out = capsys.readouterr().out
        assert "TRG edges" in out
        assert "placed" in out

    def test_profile_sampled(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main(["profile", "go", "-o", str(path), "--sample"]) == 0
        assert "sampled" in capsys.readouterr().out

    def test_run(self, capsys):
        assert main(["run", "mgrid", "--same-input"]) == 0
        out = capsys.readouterr().out
        assert "original" in out and "ccdp" in out and "reduction" in out

    def test_run_with_random_and_cache(self, capsys):
        assert main(["run", "go", "--random", "--cache", "4096:32:1"]) == 0
        out = capsys.readouterr().out
        assert "random" in out
        assert "4K/32B/direct" in out

    def test_map(self, capsys):
        assert main(["map", "fpppp"]) == 0
        out = capsys.readouterr().out
        assert "natural placement" in out
        assert "CCDP placement" in out
        assert "conflicts" in out


class TestSummaryAndTables:
    def test_summary(self, capsys):
        assert main(["summary", "mgrid"]) == 0
        out = capsys.readouterr().out
        assert "TRG edges" in out
        assert "popular @99%" in out

    def test_tables_subcommand_runs_a_small_table(self, capsys):
        assert main(["tables", "table3"]) == 0
        out = capsys.readouterr().out
        assert "mgrid" in out

    def test_tables_rejects_unknown(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["tables", "table99"])

    def test_place_with_linker_script(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        placement_path = tmp_path / "m.json"
        script_path = tmp_path / "layout.ld"
        assert main(["profile", "fpppp", "-o", str(profile_path)]) == 0
        assert main([
            "place", "--profile", str(profile_path),
            "-o", str(placement_path), "--script", str(script_path),
        ]) == 0
        text = script_path.read_text()
        assert "SECTIONS" in text
        assert "__stack_start" in text


class TestStoreCommands:
    def test_tables_programs_subset(self, capsys):
        assert main(["tables", "table2", "--programs", "compress"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out
        assert "deltablue" not in out

    def test_tables_programs_rejects_unknown(self, capsys):
        assert main(["tables", "table2", "--programs", "doom"]) == 2
        assert "unknown programs" in capsys.readouterr().err

    def test_tables_programs_rejects_unsupported_table(self, capsys):
        assert (
            main(["tables", "sampling", "--programs", "compress,go"]) == 2
        )
        assert "does not take" in capsys.readouterr().err

    def test_warm_rerun_hits_and_matches(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        argv = [
            "tables", "table2", "--programs", "compress",
            "--cache-dir", store_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert " misses=0 " in warm.err

    def test_no_cache_skips_store(self, tmp_path, capsys):
        assert main([
            "tables", "table3", "--programs", "compress", "--no-cache",
        ]) == 0
        captured = capsys.readouterr()
        assert "[store]" not in captured.err

    def test_cache_stats_gc_clear(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main([
            "run", "compress", "--cache-dir", store_dir,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "placement" in out
        assert main([
            "cache", "gc", "--max-bytes", "0", "--cache-dir", store_dir,
        ]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", store_dir]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
