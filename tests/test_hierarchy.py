"""Tests for the two-level cache hierarchy and overhead model."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import TwoLevelCache
from repro.runtime.overhead import OverheadReport, estimate_overhead
from repro.trace.events import Category
from repro.trace.stats import WorkloadStats


class TestTwoLevelCache:
    def _hierarchy(self) -> TwoLevelCache:
        return TwoLevelCache(
            CacheConfig(1024, 32, 1), CacheConfig(4096, 32, 1)
        )

    def test_l1_hit_never_reaches_l2(self):
        cache = self._hierarchy()
        cache.access(0, 4, 1, Category.GLOBAL)
        cache.access(0, 4, 1, Category.GLOBAL)
        assert cache.l2.stats.accesses == 1  # only the first (miss)

    def test_l1_miss_goes_to_l2(self):
        cache = self._hierarchy()
        cache.access(0, 4, 1, Category.GLOBAL)
        cache.access(1024, 4, 2, Category.GLOBAL)
        cache.access(0, 4, 1, Category.GLOBAL)  # L1 conflict, L2 hit
        assert cache.l1.stats.misses == 3
        assert cache.l2.stats.misses == 2
        assert cache.l2.stats.accesses == 3

    def test_l1_conflicts_absorbed_by_bigger_l2(self):
        cache = self._hierarchy()
        for _ in range(50):
            cache.access(0, 4, 1, Category.GLOBAL)
            cache.access(1024, 4, 2, Category.GLOBAL)
        stats = cache.stats
        assert stats.l1_miss_rate > 90
        assert stats.l2_local_miss_rate < 10

    def test_global_l2_rate_relative_to_l1_accesses(self):
        cache = self._hierarchy()
        cache.access(0, 4, 1, Category.GLOBAL)
        cache.access(0, 4, 1, Category.GLOBAL)
        stats = cache.stats
        assert stats.global_l2_miss_rate == pytest.approx(50.0)

    def test_amat_bounds(self):
        cache = self._hierarchy()
        cache.access(0, 4, 1, Category.GLOBAL)
        cache.access(0, 4, 1, Category.GLOBAL)
        amat = cache.stats.average_access_time(1.0, 10.0, 60.0)
        # 1 + 0.5*(10 + 1.0*60) = 36
        assert amat == pytest.approx(36.0)

    def test_empty_hierarchy(self):
        stats = self._hierarchy().stats
        assert stats.average_access_time() == 0.0
        assert stats.global_l2_miss_rate == 0.0


class TestOverheadModel:
    def _stats(self, allocs: int) -> WorkloadStats:
        stats = WorkloadStats()
        stats.alloc_count = allocs
        return stats

    def test_non_heap_program_has_zero_overhead(self):
        est = estimate_overhead(
            "compress", self._stats(0), heap_placed=False,
            original_misses=1000, ccdp_misses=600,
        )
        assert est.overhead_instructions == 0
        assert est.pays_off
        assert est.cycles_saved == pytest.approx(400 * 20.0)

    def test_heap_program_pays_per_allocation(self):
        est = estimate_overhead(
            "groff", self._stats(100), heap_placed=True,
            original_misses=1000, ccdp_misses=990,
        )
        assert est.overhead_instructions == 100 * 24
        assert est.net_cycles == pytest.approx(10 * 20.0 - 2400)
        assert not est.pays_off

    def test_zero_overhead_always_pays_off_even_with_zero_savings(self):
        est = estimate_overhead(
            "mgrid", self._stats(0), heap_placed=False,
            original_misses=1000, ccdp_misses=1000,
        )
        assert est.pays_off

    def test_report_lookup_and_render(self):
        rows = [
            estimate_overhead(
                "a", self._stats(0), False, 100, 50
            ),
            estimate_overhead(
                "b", self._stats(10), True, 100, 50
            ),
        ]
        report = OverheadReport(rows=rows)
        assert report.row_for("b").allocations == 10
        with pytest.raises(KeyError):
            report.row_for("zzz")
        text = report.render()
        assert "PaysOff" in text and "a" in text


class TestMemoryTraffic:
    def test_hierarchy_traffic_is_l2_fills_plus_writebacks(self):
        cache = TwoLevelCache(
            CacheConfig(1024, 32, 1), CacheConfig(4096, 32, 1)
        )
        cache.access(0, 4, 1, Category.GLOBAL, is_store=True)
        cache.access(1024, 4, 2, Category.GLOBAL)
        stats = cache.stats
        assert stats.memory_traffic_blocks == (
            stats.l2.misses + stats.l2.writebacks
        )

    def test_ccdp_reduces_memory_traffic_on_conflict_program(self):
        """Fewer L1 misses mean fewer L2 fills and fewer dirty evictions."""
        from repro.runtime.driver import build_placement
        from repro.runtime.resolvers import CCDPResolver, NaturalResolver
        from repro.workloads import make_workload
        from repro.experiments.extensions import _HierarchySink

        workload = make_workload("m88ksim")
        _profile, placement = build_placement(workload)
        traffic = {}
        for label, resolver in (
            ("natural", NaturalResolver()),
            ("ccdp", CCDPResolver(placement)),
        ):
            hierarchy = TwoLevelCache()
            workload.run(
                _HierarchySink(resolver, hierarchy), workload.test_input
            )
            traffic[label] = hierarchy.l1.stats.memory_traffic_blocks
        assert traffic["ccdp"] < traffic["natural"] * 0.7
