"""Golden pins for the serve daemon's wire format.

Mirrors :mod:`test_golden_tables`: the JSON fixtures under
``tests/goldens/serve_*.json`` pin the *schemas* of the daemon's
responses — key sets and value types, not volatile values — so a field
rename, a type drift, or a dropped counter breaks loudly here instead of
in someone's dashboard.  Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/test_serve_golden.py --update-goldens

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from tests.conftest import ToyWorkload

from repro.serve import Daemon, ServeClient, ServeConfig
from repro.trace.buffer import record_trace

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _shape(value):
    """Collapse a JSON payload to its schema: keys kept, values typed."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    if isinstance(value, dict):
        return {key: _shape(item) for key, item in sorted(value.items())}
    if isinstance(value, list):
        shapes = []
        for item in value:
            shape = _shape(item)
            if shape not in shapes:
                shapes.append(shape)
        return shapes
    return type(value).__name__


def _check_against_golden(request, name: str, snapshot) -> None:
    """Compare ``snapshot`` to the fixture, or rewrite it under the flag."""
    path = GOLDEN_DIR / f"{name}.json"
    normalized = json.loads(json.dumps(snapshot))
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(normalized, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote golden {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; run with --update-goldens to create it"
        )
    golden = json.loads(path.read_text())
    assert normalized == golden, (
        f"{name} drifted from its golden pin; if the change is intentional, "
        f"regenerate with --update-goldens and review the fixture diff"
    )


@pytest.fixture(scope="module")
def exchange(tmp_path_factory):
    """One scripted daemon session; every golden reads from its payloads.

    The sequence is fixed (upload → submit → poll → inspect) so the
    response *schemas* — including the telemetry counter key set — are
    deterministic even though ids, timestamps, and tallies are not.
    """
    root = tmp_path_factory.mktemp("serve-golden")
    daemon = Daemon(
        ServeConfig(cache_dir=str(root / "store"), announce=False)
    ).start()
    payloads: dict[str, dict] = {}
    try:
        client = ServeClient(port=daemon.port)
        payloads["health"] = client.health()
        trace = record_trace(ToyWorkload(), "train")
        try:
            payloads["upload"] = client.upload_trace("toyprog", "train", trace)
        finally:
            trace.close()
        status, submit = client.try_submit(
            {
                "kind": "placement",
                "workload": "toyprog",
                "input": "train",
                "cache": [1024, 32, 1],
                "place_heap": True,
            }
        )
        assert status == 202, submit
        payloads["submit"] = submit
        payloads["result"] = client.result(submit["job_id"], timeout=120.0)
        assert payloads["result"]["state"] == "done"
        payloads["record"] = client.status(submit["job_id"])
        # The dispatcher bumps its batch counter just after the record
        # turns terminal; wait for it so the counter key set is stable.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not daemon.telemetry.counters.get(
            "serve.batches"
        ):
            time.sleep(0.02)
        payloads["metrics"] = client.metrics()
        yield payloads
    finally:
        daemon.stop()


def test_health_payload_matches_golden(request, exchange):
    _check_against_golden(request, "serve_health", exchange["health"])


def test_upload_schema_matches_golden(request, exchange):
    _check_against_golden(request, "serve_upload", _shape(exchange["upload"]))


def test_submit_schema_matches_golden(request, exchange):
    _check_against_golden(request, "serve_submit", _shape(exchange["submit"]))


def test_job_record_schema_matches_golden(request, exchange):
    _check_against_golden(
        request, "serve_job_record", _shape(exchange["record"])
    )


def test_placement_result_schema_matches_golden(request, exchange):
    _check_against_golden(
        request, "serve_result_placement", _shape(exchange["result"])
    )


def test_metrics_schema_matches_golden(request, exchange):
    metrics = exchange["metrics"]
    telemetry = metrics["telemetry"]
    snapshot = {
        "state": metrics["state"],
        "queue": _shape(metrics["queue"]),
        "jobs": _shape(metrics["jobs"]),
        "tenants": metrics["tenants"],
        "telemetry": {
            # Counter/gauge *names* are the contract; values and span
            # trees vary run to run and stay unpinned.
            "counters": sorted(telemetry["counters"]),
            "gauges": sorted(telemetry["gauges"]),
            "spans": "unpinned",
        },
    }
    _check_against_golden(request, "serve_metrics", snapshot)
