"""Unit + property tests for chunk/line mapping and the conflict-cost scan."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig
from repro.core.cache_struct import (
    CacheImage,
    TRGIndex,
    active_chunks_by_entity,
    build_adjacency,
    chunk_line_span,
    conflict_cost_scan,
)
from repro.profiling.profile_data import Entity, Profile
from repro.trace.events import Category

CONFIG = CacheConfig(1024, 32, 1)  # 32 lines


class TestChunkLineSpan:
    def test_full_chunk_spans_eight_lines(self):
        span = chunk_line_span(0, 1024, 0, 256, CONFIG)
        assert span == tuple(range(8))

    def test_offset_shifts_lines(self):
        span = chunk_line_span(64, 1024, 0, 256, CONFIG)
        assert span[0] == 2

    def test_wraps_modulo_cache(self):
        span = chunk_line_span(1000, 512, 0, 256, CONFIG)
        assert span[0] == 31
        assert span[1] == 0

    def test_small_object_single_line(self):
        span = chunk_line_span(0, 8, 0, 256, CONFIG)
        assert span == (0,)

    def test_tail_chunk_truncated_by_size(self):
        # object of 300 bytes: chunk 1 covers bytes 256..299 only.
        span = chunk_line_span(0, 300, 1, 256, CONFIG)
        assert span == (8, 9)

    def test_unaligned_offset_straddles_lines(self):
        span = chunk_line_span(30, 8, 0, 256, CONFIG)
        assert span == (0, 1)


class TestCacheImage:
    def test_add_entity_maps_active_chunks(self):
        image = CacheImage(CONFIG, 256)
        image.add_entity(1, 512, 0, (0, 1))
        assert (1, 0) in image.pairs
        assert (1, 1) in image.pairs
        assert image.lines_in_use() == set(range(16))


class TestAdjacencyHelpers:
    def _profile(self) -> Profile:
        profile = Profile(chunk_size=256)
        profile.entities[1] = Entity(1, Category.GLOBAL, "g:a", size=512)
        profile.entities[2] = Entity(2, Category.GLOBAL, "g:b", size=512)
        profile.trg = {((1, 0), (2, 0)): 10, ((1, 1), (2, 0)): 4}
        return profile

    def test_build_adjacency_indexes_both_endpoints(self):
        adjacency = build_adjacency(self._profile())
        assert ((2, 0), 10) in adjacency[(1, 0)]
        assert ((1, 0), 10) in adjacency[(2, 0)]
        assert len(adjacency[(2, 0)]) == 2

    def test_active_chunks_include_chunk_zero(self):
        profile = self._profile()
        chunks = active_chunks_by_entity(profile)
        assert chunks[1] == (0, 1)
        assert chunks[2] == (0,)


class TestConflictCostScan:
    def test_finds_zero_conflict_offset(self):
        # Fixed: entity 1 chunk 0 on lines 0-7.  Moving: entity 2 chunk 0
        # (one line) with a heavy edge to the fixed pair.
        fixed = {(1, 0): tuple(range(8))}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 100)]}
        start, cost = conflict_cost_scan(fixed, moving, adjacency, 32)
        assert cost == 0
        assert start not in range(8)

    def test_reports_cost_when_unavoidable(self):
        # Fixed occupies every line: no zero-cost start exists.
        fixed = {(1, 0): tuple(range(32))}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 3)]}
        _start, cost = conflict_cost_scan(fixed, moving, adjacency, 32)
        assert cost == 3

    def test_prefers_preferred_start_on_ties(self):
        fixed = {}
        moving = {(2, 0): (0,)}
        start, cost = conflict_cost_scan(fixed, moving, {}, 32, preferred_start=7)
        assert start == 7 and cost == 0

    def test_picks_cheapest_of_two_conflicts(self):
        fixed = {(1, 0): (0,), (3, 0): (5,)}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 10), ((3, 0), 2)]}
        cost_at = {}
        for start in range(32):
            _s, c = conflict_cost_scan(
                fixed, moving, adjacency, 32, preferred_start=start
            )
        start, cost = conflict_cost_scan(fixed, moving, adjacency, 32)
        assert cost == 0  # 30 free lines exist

    def test_scan_matches_brute_force(self):
        fixed = {(1, 0): (0, 1, 2), (1, 1): (8, 9)}
        moving = {(2, 0): (0, 1), (2, 1): (4,)}
        adjacency = {
            (2, 0): [((1, 0), 5)],
            (2, 1): [((1, 1), 7)],
        }
        num_lines = 32
        # Brute force: for each start, count co-resident weighted pairs.
        def brute(start: int) -> int:
            cost = 0
            for mpair, mlines in moving.items():
                for opair, weight in adjacency[mpair]:
                    flines = fixed.get(opair, ())
                    for ml in mlines:
                        placed = (ml + start) % num_lines
                        cost += weight * sum(1 for fl in flines if fl == placed)
            return cost

        best_start, best_cost = conflict_cost_scan(
            fixed, moving, adjacency, num_lines
        )
        assert best_cost == min(brute(s) for s in range(num_lines))
        assert brute(best_start) == best_cost


class TestTRGIndex:
    def _profile(self) -> Profile:
        profile = Profile(chunk_size=256)
        profile.entities[1] = Entity(1, Category.GLOBAL, "g:a", size=512)
        profile.entities[2] = Entity(2, Category.GLOBAL, "g:b", size=512)
        profile.entities[3] = Entity(3, Category.GLOBAL, "g:c", size=64)
        profile.trg = {
            ((1, 0), (2, 0)): 10,
            ((1, 1), (2, 0)): 4,
            ((2, 0), (2, 0)): 7,  # self-loop
        }
        return profile

    def test_active_chunks_match_dict_helper(self):
        profile = self._profile()
        index = TRGIndex(profile)
        expected = active_chunks_by_entity(profile)
        for eid in profile.entities:
            assert index.active_chunks(eid) == expected[eid]

    def test_csr_rows_match_build_adjacency(self):
        profile = self._profile()
        index = TRGIndex(profile)
        adjacency = build_adjacency(profile)
        pair_of = {
            idx: (int(index.pair_eid[idx]), int(index.pair_chunk[idx]))
            for idx in range(index.num_pairs)
        }
        for idx in range(index.num_pairs):
            lo, hi = int(index.indptr[idx]), int(index.indptr[idx + 1])
            row = sorted(
                (pair_of[int(nbr)], int(w))
                for nbr, w in zip(index.nbr[lo:hi], index.wt[lo:hi])
            )
            assert row == sorted(adjacency.get(pair_of[idx], []))

    def test_entity_pair_ranges_are_contiguous_and_sorted(self):
        index = TRGIndex(self._profile())
        lo, hi = index.pair_range(1)
        assert list(index.pair_ids(1)) == list(range(lo, hi))
        assert list(index.pair_chunk[lo:hi]) == sorted(index.pair_chunk[lo:hi])

    def test_for_profile_memoizes(self):
        profile = self._profile()
        assert TRGIndex.for_profile(profile) is TRGIndex.for_profile(profile)

    def test_empty_trg_still_covers_chunk_zero(self):
        profile = Profile(chunk_size=256)
        profile.entities[5] = Entity(5, Category.GLOBAL, "g:solo", size=8)
        index = TRGIndex(profile)
        assert index.active_chunks(5) == (0,)
        assert len(index.nbr) == 0


def _brute_scan(fixed, moving, adjacency, num_lines, preferred):
    """O(lines x edges x span^2) reference with Figure 2 tie-breaking."""

    def cost_at(start: int) -> int:
        total = 0
        for mpair, mlines in moving.items():
            for opair, weight in adjacency.get(mpair, ()):
                flines = fixed.get(opair, ())
                for ml in mlines:
                    for fl in flines:
                        if (ml + start) % num_lines == fl % num_lines:
                            total += weight
        return total

    best_start = preferred % num_lines
    best_cost = cost_at(best_start)
    for step in range(1, num_lines):
        start = (preferred + step) % num_lines
        cost = cost_at(start)
        if cost < best_cost:  # strict improvement, scan order from preferred
            best_cost, best_start = cost, start
    return best_start, best_cost


class TestScanFallback:
    """Satellite regressions: arbitrary span tuples in the fallback path."""

    def test_empty_moving_span_is_skipped(self):
        fixed = {(1, 0): (0, 1)}
        moving = {(2, 0): (), (2, 1): (5,)}
        adjacency = {(2, 0): [((1, 0), 9)], (2, 1): [((1, 0), 9)]}
        start, cost = conflict_cost_scan(fixed, moving, adjacency, 32)
        assert cost == 0
        assert start == _brute_scan(fixed, moving, adjacency, 32, 0)[0]

    def test_empty_fixed_span_is_skipped(self):
        fixed = {(1, 0): ()}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 9)]}
        assert conflict_cost_scan(fixed, moving, adjacency, 32) == (0, 0)

    def test_unwrapped_lines_match_wrapped_equivalent(self):
        # (30, 31, 32) is the same circular interval as (30, 31, 0) on a
        # 32-line cache; both must produce identical scan results.
        moving = {(2, 0): (0, 1)}
        adjacency = {(2, 0): [((1, 0), 5)]}
        wrapped = conflict_cost_scan(
            {(1, 0): (30, 31, 0)}, moving, adjacency, 32, preferred_start=3
        )
        unwrapped = conflict_cost_scan(
            {(1, 0): (30, 31, 32)}, moving, adjacency, 32, preferred_start=3
        )
        assert wrapped == unwrapped

    def test_duplicate_lines_count_twice(self):
        fixed = {(1, 0): (4, 4)}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 3)]}
        start, cost = conflict_cost_scan(
            fixed, moving, adjacency, 8, preferred_start=4
        )
        assert (start, cost) == (5, 0)
        full = {(1, 0): tuple(range(8)) + (4, 4)}
        _start, cost = conflict_cost_scan(full, moving, adjacency, 8)
        assert cost == 3  # a free line still beats the doubled line 4


_span = st.lists(st.integers(0, 63), min_size=0, max_size=5).map(tuple)


@given(
    st.dictionaries(
        st.tuples(st.integers(1, 3), st.integers(0, 2)), _span,
        min_size=1, max_size=4,
    ),
    st.dictionaries(
        st.tuples(st.just(9), st.integers(0, 3)), _span,
        min_size=1, max_size=3,
    ),
    st.integers(0, 31),
)
@settings(max_examples=120, deadline=None)
def test_fallback_scan_equals_bruteforce(fixed, moving, preferred):
    """Wrapped, unwrapped, duplicated, and empty spans all match brute force."""
    adjacency = {}
    weight = 1
    for mpair in moving:
        adjacency[mpair] = [(fpair, weight) for fpair in fixed]
        weight += 2
    result = conflict_cost_scan(
        fixed, moving, adjacency, 32, preferred_start=preferred
    )
    assert result == _brute_scan(fixed, moving, adjacency, 32, preferred)


@given(
    st.dictionaries(
        st.tuples(st.integers(1, 3), st.integers(0, 2)),
        st.lists(st.integers(0, 31), min_size=1, max_size=4, unique=True).map(tuple),
        min_size=1,
        max_size=4,
    ),
    st.dictionaries(
        st.tuples(st.just(9), st.integers(0, 3)),
        st.lists(st.integers(0, 31), min_size=1, max_size=4, unique=True).map(tuple),
        min_size=1,
        max_size=3,
    ),
    st.integers(0, 31),
)
@settings(max_examples=50, deadline=None)
def test_scan_equals_bruteforce_property(fixed, moving, preferred):
    adjacency = {}
    weight = 1
    for mpair in moving:
        adjacency[mpair] = [(fpair, weight) for fpair in fixed]
        weight += 1

    def brute(start: int) -> int:
        cost = 0
        for mpair, mlines in moving.items():
            for opair, w in adjacency[mpair]:
                flines = fixed.get(opair, ())
                for ml in mlines:
                    placed = (ml + start) % 32
                    cost += w * sum(1 for fl in flines if fl == placed)
        return cost

    best_start, best_cost = conflict_cost_scan(
        fixed, moving, adjacency, 32, preferred_start=preferred
    )
    assert best_cost == min(brute(s) for s in range(32))
    assert brute(best_start) == best_cost
