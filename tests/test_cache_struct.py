"""Unit + property tests for chunk/line mapping and the conflict-cost scan."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig
from repro.core.cache_struct import (
    CacheImage,
    active_chunks_by_entity,
    build_adjacency,
    chunk_line_span,
    conflict_cost_scan,
)
from repro.profiling.profile_data import Entity, Profile
from repro.trace.events import Category

CONFIG = CacheConfig(1024, 32, 1)  # 32 lines


class TestChunkLineSpan:
    def test_full_chunk_spans_eight_lines(self):
        span = chunk_line_span(0, 1024, 0, 256, CONFIG)
        assert span == tuple(range(8))

    def test_offset_shifts_lines(self):
        span = chunk_line_span(64, 1024, 0, 256, CONFIG)
        assert span[0] == 2

    def test_wraps_modulo_cache(self):
        span = chunk_line_span(1000, 512, 0, 256, CONFIG)
        assert span[0] == 31
        assert span[1] == 0

    def test_small_object_single_line(self):
        span = chunk_line_span(0, 8, 0, 256, CONFIG)
        assert span == (0,)

    def test_tail_chunk_truncated_by_size(self):
        # object of 300 bytes: chunk 1 covers bytes 256..299 only.
        span = chunk_line_span(0, 300, 1, 256, CONFIG)
        assert span == (8, 9)

    def test_unaligned_offset_straddles_lines(self):
        span = chunk_line_span(30, 8, 0, 256, CONFIG)
        assert span == (0, 1)


class TestCacheImage:
    def test_add_entity_maps_active_chunks(self):
        image = CacheImage(CONFIG, 256)
        image.add_entity(1, 512, 0, (0, 1))
        assert (1, 0) in image.pairs
        assert (1, 1) in image.pairs
        assert image.lines_in_use() == set(range(16))


class TestAdjacencyHelpers:
    def _profile(self) -> Profile:
        profile = Profile(chunk_size=256)
        profile.entities[1] = Entity(1, Category.GLOBAL, "g:a", size=512)
        profile.entities[2] = Entity(2, Category.GLOBAL, "g:b", size=512)
        profile.trg = {((1, 0), (2, 0)): 10, ((1, 1), (2, 0)): 4}
        return profile

    def test_build_adjacency_indexes_both_endpoints(self):
        adjacency = build_adjacency(self._profile())
        assert ((2, 0), 10) in adjacency[(1, 0)]
        assert ((1, 0), 10) in adjacency[(2, 0)]
        assert len(adjacency[(2, 0)]) == 2

    def test_active_chunks_include_chunk_zero(self):
        profile = self._profile()
        chunks = active_chunks_by_entity(profile)
        assert chunks[1] == (0, 1)
        assert chunks[2] == (0,)


class TestConflictCostScan:
    def test_finds_zero_conflict_offset(self):
        # Fixed: entity 1 chunk 0 on lines 0-7.  Moving: entity 2 chunk 0
        # (one line) with a heavy edge to the fixed pair.
        fixed = {(1, 0): tuple(range(8))}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 100)]}
        start, cost = conflict_cost_scan(fixed, moving, adjacency, 32)
        assert cost == 0
        assert start not in range(8)

    def test_reports_cost_when_unavoidable(self):
        # Fixed occupies every line: no zero-cost start exists.
        fixed = {(1, 0): tuple(range(32))}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 3)]}
        _start, cost = conflict_cost_scan(fixed, moving, adjacency, 32)
        assert cost == 3

    def test_prefers_preferred_start_on_ties(self):
        fixed = {}
        moving = {(2, 0): (0,)}
        start, cost = conflict_cost_scan(fixed, moving, {}, 32, preferred_start=7)
        assert start == 7 and cost == 0

    def test_picks_cheapest_of_two_conflicts(self):
        fixed = {(1, 0): (0,), (3, 0): (5,)}
        moving = {(2, 0): (0,)}
        adjacency = {(2, 0): [((1, 0), 10), ((3, 0), 2)]}
        cost_at = {}
        for start in range(32):
            _s, c = conflict_cost_scan(
                fixed, moving, adjacency, 32, preferred_start=start
            )
        start, cost = conflict_cost_scan(fixed, moving, adjacency, 32)
        assert cost == 0  # 30 free lines exist

    def test_scan_matches_brute_force(self):
        fixed = {(1, 0): (0, 1, 2), (1, 1): (8, 9)}
        moving = {(2, 0): (0, 1), (2, 1): (4,)}
        adjacency = {
            (2, 0): [((1, 0), 5)],
            (2, 1): [((1, 1), 7)],
        }
        num_lines = 32
        # Brute force: for each start, count co-resident weighted pairs.
        def brute(start: int) -> int:
            cost = 0
            for mpair, mlines in moving.items():
                for opair, weight in adjacency[mpair]:
                    flines = fixed.get(opair, ())
                    for ml in mlines:
                        placed = (ml + start) % num_lines
                        cost += weight * sum(1 for fl in flines if fl == placed)
            return cost

        best_start, best_cost = conflict_cost_scan(
            fixed, moving, adjacency, num_lines
        )
        assert best_cost == min(brute(s) for s in range(num_lines))
        assert brute(best_start) == best_cost


@given(
    st.dictionaries(
        st.tuples(st.integers(1, 3), st.integers(0, 2)),
        st.lists(st.integers(0, 31), min_size=1, max_size=4, unique=True).map(tuple),
        min_size=1,
        max_size=4,
    ),
    st.dictionaries(
        st.tuples(st.just(9), st.integers(0, 3)),
        st.lists(st.integers(0, 31), min_size=1, max_size=4, unique=True).map(tuple),
        min_size=1,
        max_size=3,
    ),
    st.integers(0, 31),
)
@settings(max_examples=50, deadline=None)
def test_scan_equals_bruteforce_property(fixed, moving, preferred):
    adjacency = {}
    weight = 1
    for mpair in moving:
        adjacency[mpair] = [(fpair, weight) for fpair in fixed]
        weight += 1

    def brute(start: int) -> int:
        cost = 0
        for mpair, mlines in moving.items():
            for opair, w in adjacency[mpair]:
                flines = fixed.get(opair, ())
                for ml in mlines:
                    placed = (ml + start) % 32
                    cost += w * sum(1 for fl in flines if fl == placed)
        return cost

    best_start, best_cost = conflict_cost_scan(
        fixed, moving, adjacency, 32, preferred_start=preferred
    )
    assert best_cost == min(brute(s) for s in range(32))
    assert brute(best_start) == best_cost
