"""The zero-copy trace plane: backends, spill, handles, trace artifacts.

Everything here is parametrized over the three column-storage backends
where it can be: the heap path is the seed's behavior, and shm/mmap must
be observationally identical to it (bit-identical columns, resolution,
and statistics) while staying attachable and leak-free.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.runtime.resolvers import NaturalResolver
from repro.store import ArtifactStore
from repro.store import traces as store_traces
from repro.store.keys import trace_fingerprint
from repro.trace import plane
from repro.trace.buffer import DEFAULT_CHUNK_EVENTS, TraceRecorder, record_trace
from repro.trace.events import TraceError

BACKENDS = ("heap", "shm", "mmap")

#: A spill chunk far smaller than any recorded toy trace, so shm/mmap
#: recordings exercise the spill-while-recording path in every test.
TINY_SPILL = 512


def _record(workload, backend: str, tmp_path, spill=TINY_SPILL):
    return record_trace(
        workload,
        "train",
        storage=backend,
        spill_chunk_events=spill,
        spill_dir=tmp_path,
    )


def _synthetic_columns(events: int) -> tuple[np.ndarray, ...]:
    rng = np.random.default_rng(17)
    return (
        rng.integers(0, 50, events, dtype=np.int32),
        rng.integers(0, 4096, events, dtype=np.int64),
        rng.integers(1, 9, events, dtype=np.int32),
        rng.integers(0, 4, events, dtype=np.int8),
        rng.integers(0, 2, events, dtype=np.int8),
    )


class TestColumnLayout:
    def test_blocks_are_eight_byte_aligned(self):
        offsets, total = plane.column_layout(1001, plane.TRACE_COLUMN_DTYPES)
        assert offsets[0] == plane.HEADER_BYTES
        for offset in offsets:
            assert offset % 8 == 0
        assert total >= plane.HEADER_BYTES + 1001 * 18

    def test_header_round_trip_and_mismatches(self):
        raw = plane.pack_header(42)
        plane.check_header(raw, 42, "test")
        with pytest.raises(TraceError, match="42"):
            plane.check_header(raw, 43, "test")
        with pytest.raises(TraceError):
            plane.check_header(b"XXXX" + raw[4:], 42, "test")


class TestStorageContainers:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_write_read_round_trip(self, backend, tmp_path):
        columns = _synthetic_columns(777)
        storage = plane.create_storage(backend, 777, directory=tmp_path)
        try:
            # Two unequal writes spanning an odd boundary.
            storage.write_at(0, tuple(c[:500] for c in columns))
            storage.write_at(500, tuple(c[500:] for c in columns))
            storage.seal()
            for written, expected in zip(storage.columns(), columns):
                np.testing.assert_array_equal(written, expected)
        finally:
            storage.close()

    @pytest.mark.parametrize("backend", ("shm", "mmap"))
    def test_attach_sees_creator_data_and_never_unlinks(self, backend, tmp_path):
        columns = _synthetic_columns(64)
        storage = plane.create_storage(backend, 64, directory=tmp_path)
        storage.write_at(0, columns)
        storage.seal()
        attached = plane.open_storage(backend, storage.ref, 64)
        np.testing.assert_array_equal(attached.columns()[1], columns[1])
        attached.close()
        # The attachment's close must not have torn down the backing.
        again = plane.open_storage(backend, storage.ref, 64)
        np.testing.assert_array_equal(again.columns()[0], columns[0])
        again.close()
        storage.close()

    @pytest.mark.parametrize("backend", ("shm", "mmap"))
    def test_owner_close_releases_the_backing(self, backend, tmp_path):
        storage = plane.create_storage(backend, 8, directory=tmp_path)
        storage.write_at(0, _synthetic_columns(8))
        storage.seal()
        ref = storage.ref
        storage.close()
        with pytest.raises(TraceError):
            plane.open_storage(backend, ref, 8)

    def test_attach_with_wrong_event_count_is_rejected(self, tmp_path):
        storage = plane.create_storage("mmap", 32, directory=tmp_path)
        storage.write_at(0, _synthetic_columns(32))
        storage.seal()
        try:
            with pytest.raises(TraceError):
                plane.open_storage("mmap", storage.ref, 31)
        finally:
            storage.close()

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="disk"):
            plane.create_storage("disk", 1)
        with pytest.raises(ValueError):
            plane.open_storage("heap", "", 1)


class TestSpillFormat:
    def test_chunks_round_trip(self, tmp_path):
        path = tmp_path / "round.spill"
        columns = _synthetic_columns(1000)
        writer = plane.SpillWriter(path)
        writer.write_chunk(tuple(c[:600] for c in columns))
        writer.write_chunk(tuple(c[600:] for c in columns))
        writer.close()
        chunks = list(plane.iter_spill_chunks(path))
        assert [len(chunk[0]) for chunk in chunks] == [600, 400]
        rebuilt = np.concatenate([chunk[1] for chunk in chunks])
        np.testing.assert_array_equal(rebuilt, columns[1])

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.spill"
        plane.SpillWriter(path).close()
        assert list(plane.iter_spill_chunks(path)) == []

    @pytest.mark.parametrize("clip", (3, 20, 200))
    def test_truncation_raises_mid_chunk(self, tmp_path, clip):
        path = tmp_path / "short.spill"
        writer = plane.SpillWriter(path)
        writer.write_chunk(_synthetic_columns(100))
        writer.close()
        os.truncate(path, os.path.getsize(path) - clip)
        with pytest.raises(TraceError, match="mid-chunk"):
            list(plane.iter_spill_chunks(path))


class TestBackendParity:
    """shm/mmap recordings must be bit-identical to the heap path."""

    @pytest.mark.parametrize("backend", ("shm", "mmap"))
    def test_columns_resolution_and_stats_match_heap(
        self, backend, toy_workload, tmp_path
    ):
        heap = record_trace(toy_workload, "train")
        other = _record(toy_workload, backend, tmp_path)
        try:
            assert other.events == heap.events
            assert other.ops == heap.ops
            for left, right in zip(other.columns(), heap.columns()):
                np.testing.assert_array_equal(left, right)
            np.testing.assert_array_equal(
                other.resolve(NaturalResolver()), heap.resolve(NaturalResolver())
            )
            assert other.stats() == heap.stats()
            assert trace_fingerprint(other) == trace_fingerprint(heap)
        finally:
            other.close()

    @pytest.mark.parametrize("backend", ("shm", "mmap"))
    def test_spill_chunk_size_does_not_change_the_trace(
        self, backend, toy_workload, tmp_path
    ):
        small = _record(toy_workload, backend, tmp_path, spill=97)
        large = _record(toy_workload, backend, tmp_path, spill=1 << 20)
        try:
            for left, right in zip(small.columns(), large.columns()):
                np.testing.assert_array_equal(left, right)
        finally:
            small.close()
            large.close()


class TestChunkBoundaries:
    """Chunked consumption at awkward event counts, on every backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunk_events", (1, 7, 64, DEFAULT_CHUNK_EVENTS))
    def test_iter_resolved_covers_non_multiple_streams(
        self, backend, chunk_events, toy_workload, tmp_path
    ):
        trace = _record(toy_workload, backend, tmp_path)
        try:
            assert trace.events % chunk_events != 0 or chunk_events == 1
            reference = trace.resolve(NaturalResolver())
            spans = []
            pieces = []
            for start, end, addresses in trace.iter_resolved(
                NaturalResolver(), chunk_events=chunk_events
            ):
                assert end - start <= chunk_events
                spans.append((start, end))
                pieces.append(addresses.copy())
                trace.advise_done(start, end)
            assert spans[0][0] == 0
            assert spans[-1][1] == trace.events
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
            np.testing.assert_array_equal(np.concatenate(pieces), reference)
        finally:
            trace.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_trace(self, backend, tmp_path):
        recorder = TraceRecorder(
            storage=backend, spill_chunk_events=TINY_SPILL, spill_dir=tmp_path
        )
        recorder.on_end()
        try:
            assert recorder.events == 0
            assert all(len(c) == 0 for c in recorder.columns())
            assert list(recorder.iter_resolved(NaturalResolver())) == []
            assert len(recorder.resolve(NaturalResolver())) == 0
        finally:
            recorder.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_event_trace(self, backend, tmp_path):
        from repro.trace.events import Category, ObjectInfo

        recorder = TraceRecorder(
            storage=backend, spill_chunk_events=TINY_SPILL, spill_dir=tmp_path
        )
        info = ObjectInfo(
            obj_id=1, category=Category.GLOBAL, size=64, symbol="g", decl_index=0
        )
        recorder.on_object(info)
        recorder.on_access(1, 8, 4, 0, int(Category.GLOBAL))
        recorder.on_end()
        try:
            assert recorder.events == 1
            chunks = list(recorder.iter_resolved(NaturalResolver()))
            assert len(chunks) == 1
            start, end, addresses = chunks[0]
            assert (start, end) == (0, 1)
            assert len(addresses) == 1
        finally:
            recorder.close()

    @pytest.mark.parametrize("backend", ("shm", "mmap"))
    def test_exact_spill_multiple_has_no_ragged_tail(
        self, backend, tmp_path
    ):
        from repro.trace.events import Category, ObjectInfo

        recorder = TraceRecorder(
            storage=backend, spill_chunk_events=8, spill_dir=tmp_path
        )
        info = ObjectInfo(
            obj_id=1, category=Category.GLOBAL, size=4096, symbol="g", decl_index=0
        )
        recorder.on_object(info)
        for index in range(32):  # exactly 4 spill chunks, empty staging tail
            recorder.on_access(1, index * 4, 4, 0, int(Category.GLOBAL))
        recorder.on_end()
        try:
            assert recorder.events == 32
            np.testing.assert_array_equal(
                recorder.columns()[1], np.arange(32, dtype=np.int64) * 4
            )
        finally:
            recorder.close()


class TestHandles:
    @pytest.mark.parametrize("backend", ("shm", "mmap"))
    def test_pickle_round_trip_and_attach(self, backend, toy_workload, tmp_path):
        trace = _record(toy_workload, backend, tmp_path)
        try:
            handle = trace.handle()
            # The whole point: the handle is small — columns never cross
            # the process boundary (toy trace columns are ~100KB).
            assert len(pickle.dumps(handle)) < 20_000
            revived = pickle.loads(pickle.dumps(handle))
            attached = TraceRecorder.attach(revived)
            assert attached.events == trace.events
            for left, right in zip(attached.columns(), trace.columns()):
                np.testing.assert_array_equal(left, right)
            attached.close()
            # An attachment's close leaves the creator's storage alive.
            assert trace.events == len(trace.columns()[0])
        finally:
            trace.close()

    def test_heap_traces_are_not_attachable(self, toy_workload):
        trace = record_trace(toy_workload, "train")
        with pytest.raises(TraceError, match="not attachable"):
            trace.handle()


class TestTraceArtifacts:
    """Fingerprint-keyed memmap trace artifacts in the content store."""

    @pytest.fixture
    def store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    def _saved(self, store, toy_workload):
        trace = record_trace(toy_workload, "train")
        fingerprint = store_traces.remember_and_save(
            store, toy_workload.name, "train", trace
        )
        return trace, fingerprint

    def test_save_attach_round_trip(self, store, toy_workload):
        trace, fingerprint = self._saved(store, toy_workload)
        path = store_traces.trace_data_path(store, fingerprint)
        assert path.is_file()
        loaded = store_traces.load_trace(store, toy_workload.name, "train")
        assert loaded is not None
        assert loaded.backend == "mmap"
        for left, right in zip(loaded.columns(), trace.columns()):
            np.testing.assert_array_equal(left, right)
        np.testing.assert_array_equal(
            loaded.resolve(NaturalResolver()), trace.resolve(NaturalResolver())
        )
        loaded.close()
        assert path.is_file()  # attachments never unlink the artifact

    def test_save_is_idempotent(self, store, toy_workload):
        _trace, fingerprint = self._saved(store, toy_workload)
        path = store_traces.trace_data_path(store, fingerprint)
        before = path.stat().st_mtime_ns
        self._saved(store, toy_workload)
        assert path.stat().st_mtime_ns == before

    def test_truncated_artifact_self_heals(self, store, toy_workload):
        _trace, fingerprint = self._saved(store, toy_workload)
        path = store_traces.trace_data_path(store, fingerprint)
        os.truncate(path, path.stat().st_size // 2)
        corrupt_before = store.counters.corrupt
        assert store_traces.load_trace_by_fingerprint(store, fingerprint) is None
        assert store.counters.corrupt == corrupt_before + 1
        assert not path.exists()  # discarded alongside its entry
        # The caller's recompute-and-rewrite path restores the artifact.
        trace, again = self._saved(store, toy_workload)
        assert again == fingerprint
        loaded = store_traces.load_trace_by_fingerprint(store, fingerprint)
        np.testing.assert_array_equal(
            loaded.resolve(NaturalResolver()), trace.resolve(NaturalResolver())
        )
        loaded.close()

    def test_stats_count_trace_data_bytes(self, store, toy_workload):
        _trace, fingerprint = self._saved(store, toy_workload)
        path = store_traces.trace_data_path(store, fingerprint)
        summary = store.stats()
        assert summary.trace_files == 1
        assert summary.trace_bytes == path.stat().st_size
        assert summary.bytes_by_kind["trace-data"] == summary.trace_bytes
        assert summary.bytes_by_kind["trace"] > 0

    def test_gc_removes_orphaned_trace_files(self, store, toy_workload):
        _trace, fingerprint = self._saved(store, toy_workload)
        orphan = store_traces.trace_data_path(store, "ff" + "0" * 62)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"x" * 128)
        removed, bytes_removed = store.gc()
        assert removed >= 1
        assert bytes_removed >= 128
        assert not orphan.exists()
        # The referenced artifact survives.
        assert store_traces.trace_data_path(store, fingerprint).exists()

    def test_clear_removes_trace_files(self, store, toy_workload):
        _trace, fingerprint = self._saved(store, toy_workload)
        store.clear()
        assert not store_traces.trace_data_path(store, fingerprint).exists()
        assert store.stats().trace_files == 0


class TestScaleBench:
    """The amplifier and arm grid behind ``repro bench --trace-scale``."""

    def test_default_arms_grid(self):
        from repro.runtime.scale import default_arms

        assert default_arms((1, 10)) == [
            ("heap", 1),
            ("shm", 1),
            ("mmap", 1),
            ("mmap", 10),
        ]
        assert default_arms((1, 2), ("heap", "mmap")) == [
            ("heap", 1),
            ("heap", 2),
            ("mmap", 1),
            ("mmap", 2),
        ]

    def test_amplifier_tiles_columns_and_resolves_periodically(
        self, toy_workload, tmp_path
    ):
        from repro.runtime.scale import amplify_trace

        base = record_trace(toy_workload, "train")
        amplified = amplify_trace(base, 3, "mmap", directory=tmp_path)
        try:
            events = base.events
            assert amplified.events == events * 3
            assert amplified.ops == list(base.ops)
            assert (
                amplified.compute_instructions == base.compute_instructions * 3
            )
            base_obj = base.columns()[0]
            amp_obj = amplified.columns()[0]
            for copy in range(3):
                np.testing.assert_array_equal(
                    amp_obj[copy * events : (copy + 1) * events], base_obj
                )
            # Every copy resolves to the same addresses as the base: the
            # lifetime ops replay once and bases persist past frees.
            reference = base.resolve(NaturalResolver())
            resolved = amplified.resolve(NaturalResolver())
            for copy in range(3):
                np.testing.assert_array_equal(
                    resolved[copy * events : (copy + 1) * events], reference
                )
        finally:
            amplified.close()

    def test_scale_rejects_nonpositive_factors(self):
        from repro.runtime.scale import run_scale_bench

        with pytest.raises(ValueError, match=">= 1"):
            run_scale_bench(quick=True, scales=(0,), output=None)
