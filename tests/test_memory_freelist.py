"""Unit tests for the arena / free-list machinery."""

from __future__ import annotations

import pytest

from repro.memory.freelist import Arena, FreeBlock, HeapError


class TestArenaGrowth:
    def test_extend_returns_aligned_addresses(self):
        arena = Arena(base=0x1000)
        addr = arena.extend(100)
        assert addr == 0x1000
        addr2 = arena.extend(10)
        assert addr2 % 8 == 0
        assert addr2 >= addr + 100

    def test_extend_records_alignment_padding_as_free(self):
        arena = Arena(base=0x1000)
        arena.extend(5)  # brk now 0x1005
        arena.extend(8)  # aligns to 0x1008, 3 bytes padding
        assert arena.total_free_bytes() == 3

    def test_extend_to_cache_offset(self):
        arena = Arena(base=0x1000)
        addr = arena.extend_to_cache_offset(64, cache_offset=96, cache_size=1024)
        assert addr % 1024 == 96
        arena.mark_live(addr, 64)
        arena.check_invariants()

    def test_extend_to_cache_offset_already_aligned(self):
        arena = Arena(base=0x1000)
        # 0x1000 % 1024 == 0, so offset 0 requires no padding.
        addr = arena.extend_to_cache_offset(32, cache_offset=0, cache_size=1024)
        assert addr == 0x1000


class TestLiveness:
    def test_double_mark_rejected(self):
        arena = Arena(base=0)
        addr = arena.extend(16)
        arena.mark_live(addr, 16)
        with pytest.raises(HeapError):
            arena.mark_live(addr, 16)

    def test_release_unknown_rejected(self):
        arena = Arena(base=0)
        with pytest.raises(HeapError):
            arena.release(0x42)

    def test_release_returns_size(self):
        arena = Arena(base=0)
        addr = arena.extend(24)
        arena.mark_live(addr, 24)
        assert arena.release(addr) == 24


class TestFreeList:
    def test_coalesce_with_predecessor(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(0, 10)
        arena.add_free(10, 10)
        assert len(arena.free_blocks) == 1
        assert arena.free_blocks[0].size == 20

    def test_coalesce_with_successor(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(20, 10)
        arena.add_free(10, 10)
        assert len(arena.free_blocks) == 1
        assert arena.free_blocks[0].addr == 10

    def test_coalesce_both_sides(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(0, 10)
        arena.add_free(20, 10)
        arena.add_free(10, 10)
        assert len(arena.free_blocks) == 1
        assert arena.free_blocks[0].size == 30

    def test_overlapping_free_rejected(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(0, 20)
        with pytest.raises(HeapError):
            arena.add_free(10, 20)

    def test_zero_size_free_is_noop(self):
        arena = Arena(base=0)
        arena.add_free(0, 0)
        assert not arena.free_blocks

    def test_take_from_block_splits(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(0, 64)
        arena.take_from_block(0, 16, 16)
        sizes = sorted(b.size for b in arena.free_blocks)
        assert sizes == [16, 32]

    def test_take_whole_block(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(0, 32)
        arena.take_from_block(0, 0, 32)
        assert not arena.free_blocks

    def test_take_outside_block_rejected(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(0, 32)
        with pytest.raises(HeapError):
            arena.take_from_block(0, 16, 32)

    def test_take_stamps_remainders_with_clock(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.add_free(0, 64)
        arena.clock = 7
        arena.take_from_block(0, 16, 16)
        assert all(block.last_touch == 7 for block in arena.free_blocks)


class TestInvariants:
    def test_detects_live_overlap(self):
        arena = Arena(base=0)
        arena.brk = 100
        arena.live[0] = 16
        arena.live[8] = 16
        with pytest.raises(HeapError):
            arena.check_invariants()

    def test_detects_free_outside_bounds(self):
        arena = Arena(base=0)
        arena.brk = 10
        arena.free_blocks.append(FreeBlock(50, 10))
        with pytest.raises(HeapError):
            arena.check_invariants()

    def test_clean_arena_passes(self):
        arena = Arena(base=0x1000)
        a = arena.extend(32)
        arena.mark_live(a, 32)
        b = arena.extend(32)
        arena.mark_live(b, 32)
        arena.release(a)
        arena.add_free(a, 32)
        arena.check_invariants()
