"""Tests for the extension experiment harnesses (fast subsets)."""

from __future__ import annotations

import pytest

from repro.experiments import clear_cache
from repro.experiments.extensions import (
    run_hierarchy_study,
    run_overhead_report,
    run_sampling_study,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestOverheadReport:
    def test_mgrid_row(self):
        report = run_overhead_report(["mgrid"])
        row = report.row_for("mgrid")
        assert row.overhead_instructions == 0
        assert not row.heap_placed
        assert row.pays_off

    def test_render(self):
        text = run_overhead_report(["mgrid", "go"]).render()
        assert "PaysOff" in text and "mgrid" in text

    def test_custom_penalty(self):
        report = run_overhead_report(["go"], miss_penalty=5.0)
        assert report.row_for("go").miss_penalty == 5.0


class TestHierarchyStudy:
    def test_l2_accesses_bounded_by_l1_misses(self):
        result = run_hierarchy_study(("mgrid",))
        row = result.row_for("mgrid")
        for stats in (row.natural, row.ccdp):
            assert stats.l2.accesses == stats.l1.misses

    def test_mgrid_unchanged_at_both_levels(self):
        result = run_hierarchy_study(("mgrid",))
        row = result.row_for("mgrid")
        assert row.ccdp.l1_miss_rate == pytest.approx(
            row.natural.l1_miss_rate, abs=0.05
        )

    def test_render(self):
        assert "AMAT" in run_hierarchy_study(("mgrid",)).render()


class TestSamplingStudy:
    def test_rows_cover_patterns(self):
        result = run_sampling_study(
            "go", patterns=((1000, 1000), (100, 1000))
        )
        assert [row.sampled_fraction for row in result.rows] == [1.0, 0.1]

    def test_sampled_retains_most_of_win(self):
        result = run_sampling_study(
            "go", patterns=((1000, 1000), (200, 1000))
        )
        exhaustive, sampled = result.rows
        assert sampled.pct_reduction > exhaustive.pct_reduction - 20

    def test_render(self):
        text = run_sampling_study("go", patterns=((500, 1000),)).render()
        assert "Time-sampled" in text


class TestHeapDiscipline:
    def test_three_disciplines_measured(self):
        from repro.experiments.ablations import sweep_heap_discipline

        result = sweep_heap_discipline("espresso")
        assert [row.discipline for row in result.rows] == [
            "natural", "ccdp", "ccdp-compact",
        ]

    def test_compact_heap_restores_page_compactness(self):
        from repro.experiments.ablations import sweep_heap_discipline

        result = sweep_heap_discipline("espresso")
        natural = result.row_for("natural")
        ccdp = result.row_for("ccdp")
        compact = result.row_for("ccdp-compact")
        # The compact variant never uses more pages than full CCDP and
        # keeps the cache win.
        assert compact.total_pages <= ccdp.total_pages
        assert compact.miss_rate < natural.miss_rate

    def test_render(self):
        from repro.experiments.ablations import sweep_heap_discipline

        text = sweep_heap_discipline("gcc").render()
        assert "ccdp-compact" in text
