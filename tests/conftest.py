"""Shared fixtures: a small deterministic toy workload and cache configs."""

from __future__ import annotations

import random

import pytest

from repro.cache.config import CacheConfig
from repro.obs import invariants
from repro.vm.program import Program
from repro.workloads.base import Workload, WorkloadInput


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden fixture files under tests/goldens/ "
        "with current pipeline output instead of comparing against them",
    )


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the CLI's default artifact store at a per-test directory.

    Without this, any test invoking ``repro run``/``tables``/``report``
    through :func:`repro.cli.main` would create (and share) a
    ``.repro-cache`` directory in the repository root.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-store"))


@pytest.fixture(autouse=True)
def _conservation_invariants_on():
    """Keep miss-attribution conservation checks on for every test.

    The checks default on; this pins them on even if a test under the
    same process toggled the global switch and failed before restoring.
    """
    invariants.set_enabled(True)
    yield
    invariants.set_enabled(True)


class ToyWorkload(Workload):
    """A small, fast workload exercising all four object categories.

    Three mid-size globals are accessed in lockstep (a natural conflict
    candidate), a cluster of small globals rotates, heap nodes churn from
    two allocation sites (one concurrently live, one sequential), and a
    constant table is read throughout.
    """

    def __init__(self) -> None:
        super().__init__(
            name="toy",
            inputs={
                "train": WorkloadInput("train", seed=101, scale=1.0),
                "test": WorkloadInput("test", seed=202, scale=1.2),
            },
            place_heap=True,
        )

    def body(self, program: Program, rng: random.Random, scale: float) -> None:
        table_a = program.add_global("table_a", 2048)
        spacer = program.add_global("spacer", 6144)
        table_b = program.add_global("table_b", 2048)
        smalls = [program.add_global(f"small_{i}", 8) for i in range(6)]
        lookup = program.add_constant("lookup", 256)
        program.start()
        iterations = self.scaled(600, scale)
        with program.function(0x1000, frame_bytes=64):
            persistent = []
            for _ in range(10):
                program.call(0x2000)
                persistent.append(program.malloc(48))
                program.ret()
            for index in range(iterations):
                offset = (index * 32) % 2048
                program.load(table_a, offset)
                program.store(table_b, offset)
                program.load(smalls[index % 6], 0)
                program.load(lookup, (index * 8) % 256)
                program.load_local((index % 8) * 8)
                node = persistent[index % 10]
                program.load(node, 0)
                if index % 7 == 0:
                    program.call(0x3000)
                    scratch = program.malloc(24)
                    program.ret()
                    program.store(scratch, 0)
                    program.load(scratch, 8)
                    program.free(scratch)
                program.compute(4)
            for node in persistent:
                program.free(node)


@pytest.fixture
def toy_workload() -> ToyWorkload:
    """A fresh toy workload instance."""
    return ToyWorkload()


@pytest.fixture
def small_cache() -> CacheConfig:
    """A small cache so toy traces produce meaningful conflict."""
    return CacheConfig(size=1024, line_size=32, associativity=1)


@pytest.fixture
def paper_cache() -> CacheConfig:
    """The paper's 8K direct-mapped, 32-byte-line cache."""
    return CacheConfig(size=8192, line_size=32, associativity=1)
