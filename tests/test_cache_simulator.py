"""Unit + property tests for the classifying cache simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig, PAPER_CACHE
from repro.cache.simulator import CacheSimulator
from repro.trace.events import Category


class TestCacheConfig:
    def test_paper_cache_geometry(self):
        assert PAPER_CACHE.size == 8192
        assert PAPER_CACHE.line_size == 32
        assert PAPER_CACHE.num_lines == 256
        assert PAPER_CACHE.num_sets == 256

    def test_associative_sets(self):
        config = CacheConfig(8192, 32, 2)
        assert config.num_sets == 128

    def test_set_index_wraps(self):
        config = CacheConfig(1024, 32, 1)
        assert config.set_index(0) == config.set_index(1024)
        assert config.set_index(32) == 1

    def test_block_addr(self):
        config = CacheConfig(1024, 32, 1)
        assert config.block_addr(37) == 32

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 32, 1)
        with pytest.raises(ValueError):
            CacheConfig(1024, 24, 1)
        with pytest.raises(ValueError):
            CacheConfig(0, 32, 1)

    def test_describe(self):
        assert CacheConfig(8192, 32, 1).describe() == "8K/32B/direct"
        assert CacheConfig(8192, 32, 4).describe() == "8K/32B/4-way"


class TestDirectMapped:
    def test_first_access_misses(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        assert sim.access(0, 4, 1, Category.GLOBAL) is True

    def test_repeat_access_hits(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL)
        assert sim.access(4, 4, 1, Category.GLOBAL) is False

    def test_aliasing_addresses_conflict(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL)
        sim.access(1024, 4, 2, Category.GLOBAL)
        assert sim.access(0, 4, 1, Category.GLOBAL) is True

    def test_spanning_access_touches_two_blocks(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(30, 4, 1, Category.GLOBAL)
        assert sim.stats.accesses == 2
        assert sim.stats.misses == 2

    def test_miss_attribution_by_category(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.STACK)
        sim.access(2048, 4, 2, Category.HEAP)
        assert sim.stats.misses_by_category[Category.STACK] == 1
        assert sim.stats.misses_by_category[Category.HEAP] == 1
        assert sim.stats.misses_by_category[Category.GLOBAL] == 0

    def test_miss_attribution_by_object(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 7, Category.GLOBAL)
        sim.access(0, 4, 7, Category.GLOBAL)
        assert sim.stats.accesses_by_object[7] == 2
        assert sim.stats.misses_by_object[7] == 1
        assert sim.stats.object_miss_rate(7) == pytest.approx(50.0)

    def test_miss_rate_percent(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL)
        sim.access(0, 4, 1, Category.GLOBAL)
        assert sim.stats.miss_rate == pytest.approx(50.0)

    def test_category_rates_sum_to_total(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        for index in range(200):
            sim.access(index * 64, 4, index % 5, Category(index % 4))
        total = sum(
            sim.stats.category_miss_rate(category) for category in Category
        )
        assert total == pytest.approx(sim.stats.miss_rate)


class TestSetAssociative:
    def test_two_way_tolerates_one_alias(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 2))
        sim.access(0, 4, 1, Category.GLOBAL)
        sim.access(512, 4, 2, Category.GLOBAL)  # same set, second way
        assert sim.access(0, 4, 1, Category.GLOBAL) is False

    def test_lru_eviction(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 2))
        sim.access(0, 4, 1, Category.GLOBAL)      # A
        sim.access(512, 4, 2, Category.GLOBAL)    # B
        sim.access(0, 4, 1, Category.GLOBAL)      # touch A (B is LRU)
        sim.access(1024, 4, 3, Category.GLOBAL)   # C evicts B
        assert sim.access(0, 4, 1, Category.GLOBAL) is False   # A still in
        assert sim.access(512, 4, 2, Category.GLOBAL) is True  # B evicted

    def test_fully_associative_behaves_as_lru(self):
        config = CacheConfig(128, 32, 4)  # one set of 4 ways
        sim = CacheSimulator(config)
        for block in range(4):
            sim.access(block * 32, 4, block, Category.GLOBAL)
        sim.access(4 * 32, 4, 9, Category.GLOBAL)  # evicts block 0
        assert sim.access(0, 4, 0, Category.GLOBAL) is True


class TestClassification:
    def test_first_touch_is_compulsory(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1), classify=True)
        sim.access(0, 4, 1, Category.GLOBAL)
        assert sim.stats.compulsory == 1

    def test_alias_pingpong_is_conflict(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1), classify=True)
        sim.access(0, 4, 1, Category.GLOBAL)
        sim.access(1024, 4, 2, Category.GLOBAL)
        sim.access(0, 4, 1, Category.GLOBAL)
        # third access: non-compulsory, would hit fully associatively.
        assert sim.stats.conflict == 1
        assert sim.stats.capacity == 0

    def test_working_set_overflow_is_capacity(self):
        config = CacheConfig(128, 32, 1)  # 4 lines
        sim = CacheSimulator(config, classify=True)
        blocks = 8
        for sweep in range(2):
            for block in range(blocks):
                sim.access(block * 32, 4, block, Category.GLOBAL)
        assert sim.stats.capacity > 0

    def test_classes_partition_misses(self):
        sim = CacheSimulator(CacheConfig(256, 32, 1), classify=True)
        for index in range(500):
            sim.access((index * 37) % 2048, 4, index % 7, Category.GLOBAL)
        stats = sim.stats
        assert stats.compulsory + stats.conflict + stats.capacity == stats.misses


@given(
    st.lists(
        st.tuples(st.integers(0, 4095), st.integers(0, 3)),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=50, deadline=None)
def test_classification_always_partitions(accesses):
    sim = CacheSimulator(CacheConfig(256, 32, 1), classify=True)
    for addr, cat in accesses:
        sim.access(addr, 4, addr // 32, Category(cat))
    stats = sim.stats
    assert stats.compulsory + stats.conflict + stats.capacity == stats.misses
    assert stats.misses <= stats.accesses


@given(
    st.lists(st.integers(0, 8191), min_size=1, max_size=300),
    st.integers(1, 3).map(lambda p: 2**p),
)
@settings(max_examples=40, deadline=None)
def test_lru_inclusion_bigger_cache_same_associativity(addrs, assoc):
    """Doubling an LRU cache's sets never adds misses (LRU inclusion).

    The inclusion property holds between caches with the same
    associativity where the larger cache's set index refines the smaller
    one's — the classic justification for single-pass multi-size cache
    simulation.
    """
    small = CacheSimulator(CacheConfig(512, 32, assoc))
    large = CacheSimulator(CacheConfig(1024, 32, assoc))
    for addr in addrs:
        small.access(addr, 4, 0, Category.GLOBAL)
        large.access(addr, 4, 0, Category.GLOBAL)
    assert large.stats.misses <= small.stats.misses


class TestWriteBack:
    def test_clean_eviction_no_writeback(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL, is_store=False)
        sim.access(1024, 4, 2, Category.GLOBAL, is_store=False)
        assert sim.stats.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL, is_store=True)
        sim.access(1024, 4, 2, Category.GLOBAL, is_store=False)
        assert sim.stats.writebacks == 1

    def test_store_hit_dirties_line(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL, is_store=False)  # clean fill
        sim.access(4, 4, 1, Category.GLOBAL, is_store=True)   # dirty on hit
        sim.access(1024, 4, 2, Category.GLOBAL, is_store=False)
        assert sim.stats.writebacks == 1

    def test_refill_resets_dirty_state(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL, is_store=True)
        sim.access(1024, 4, 2, Category.GLOBAL, is_store=False)  # wb #1
        sim.access(0, 4, 1, Category.GLOBAL, is_store=False)     # clean refill
        sim.access(1024, 4, 2, Category.GLOBAL, is_store=False)
        assert sim.stats.writebacks == 1  # second eviction was clean

    def test_associative_dirty_lru_eviction(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 2))
        sim.access(0, 4, 1, Category.GLOBAL, is_store=True)    # way 1, dirty
        sim.access(512, 4, 2, Category.GLOBAL, is_store=False)  # way 2
        sim.access(1024, 4, 3, Category.GLOBAL, is_store=False)  # evict dirty LRU
        assert sim.stats.writebacks == 1

    def test_memory_traffic_blocks(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL, is_store=True)
        sim.access(1024, 4, 2, Category.GLOBAL, is_store=False)
        stats = sim.stats
        assert stats.memory_traffic_blocks == stats.misses + stats.writebacks == 3
