"""Placement-engine parity: the array engine is bit-identical to scalar.

The vectorized placement engine (`repro.core.placement_engine`) is only
admissible because it makes exactly the decisions of the dict-based
reference path: identical global offsets, data/stack bases, heap tables,
and `PlacementStats` counters.  This suite asserts full `PlacementMap`
equality for all nine paper workloads across three cache geometries
(the paper's 8K/32B plus a larger-line and a smaller-capacity variant).

Profiles are rebuilt per geometry — the TRG queue threshold is 2x the
cache size, so different geometries legitimately produce different
profiles — but recorded traces are shared through the experiment-level
trace cache, keeping the suite fast.
"""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.core.algorithm import CCDPPlacer
from repro.experiments.common import cached_trace
from repro.profiling.batch import profile_trace
from repro.runtime.parallel import PlacementSpec, run_placements
from repro.workloads import make_workload, workload_names

GEOMETRIES = (
    CacheConfig(8192, 32, 1),
    CacheConfig(16384, 64, 1),
    CacheConfig(4096, 32, 1),
)


def _geometry_id(config: CacheConfig) -> str:
    return f"{config.size}B-{config.line_size}B-{config.associativity}w"


def _place(name: str, config: CacheConfig, engine: str):
    workload = make_workload(name)
    trace = cached_trace(name, workload.train_input)
    profile = profile_trace(trace, cache_config=config)
    placer = CCDPPlacer(
        profile, config, place_heap=workload.place_heap, engine=engine
    )
    return placer.place()


@pytest.mark.parametrize("config", GEOMETRIES, ids=_geometry_id)
@pytest.mark.parametrize("name", workload_names())
def test_array_engine_matches_scalar(name, config):
    scalar_map = _place(name, config, "scalar")
    array_map = _place(name, config, "array")
    # Field-by-field first for readable failures, then the full dataclass
    # equality (which covers cache_config and the stats counters too).
    assert array_map.global_offsets == scalar_map.global_offsets
    assert array_map.data_base == scalar_map.data_base
    assert array_map.stack_base == scalar_map.stack_base
    assert array_map.heap_table == scalar_map.heap_table
    assert array_map.stats == scalar_map.stats
    assert array_map == scalar_map


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        profile = profile_trace(
            cached_trace("deltablue", make_workload("deltablue").train_input),
            cache_config=GEOMETRIES[0],
        )
        with pytest.raises(ValueError, match="unknown placement engine"):
            CCDPPlacer(profile, GEOMETRIES[0], engine="simd")

    def test_timings_recorded_but_ignored_by_equality(self):
        placement = _place("deltablue", GEOMETRIES[0], "array")
        assert placement.stats.place_seconds > 0.0
        assert (
            0.0 <= placement.stats.merge_loop_seconds
            <= placement.stats.place_seconds
        )
        other = _place("deltablue", GEOMETRIES[0], "scalar")
        # Wall-clock necessarily differs between runs, yet maps are equal.
        assert placement == other


class TestPlacementFanOut:
    def test_run_placements_matches_inline(self):
        specs = [
            PlacementSpec(workload="deltablue", cache_config=GEOMETRIES[0]),
            PlacementSpec(
                workload="espresso",
                cache_config=GEOMETRIES[0],
                placement_engine="scalar",
            ),
        ]
        inline = run_placements(specs, jobs=1)
        fanned = run_placements(specs, jobs=2)
        assert inline == fanned
        assert inline[0].global_offsets
