"""Unit tests for workload statistics and the Table 3 size buckets."""

from __future__ import annotations

import pytest

from repro.trace.events import Category, ObjectInfo, STACK_OBJECT_ID
from repro.trace.stats import (
    SIZE_BUCKET_BOUNDS,
    SIZE_BUCKET_LABELS,
    StatsSink,
    size_breakdown,
    size_bucket,
)


class TestSizeBucket:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (1, 0),
            (8, 0),
            (9, 1),
            (128, 1),
            (129, 2),
            (1024, 2),
            (1025, 3),
            (4096, 3),
            (4097, 4),
            (8192, 4),
            (8193, 5),
            (32768, 5),
            (32769, 6),
            (1 << 22, 6),
        ],
    )
    def test_bucket_boundaries_match_table3(self, size, expected):
        assert size_bucket(size) == expected

    def test_labels_cover_all_buckets(self):
        assert len(SIZE_BUCKET_LABELS) == len(SIZE_BUCKET_BOUNDS) + 1


class TestStatsSink:
    def _populated(self) -> StatsSink:
        sink = StatsSink()
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 64, "g"))
        sink.on_object(ObjectInfo(2, Category.CONST, 16, "c"))
        for _ in range(6):
            sink.on_access(1, 0, 4, False, Category.GLOBAL)
        for _ in range(2):
            sink.on_access(1, 0, 4, True, Category.GLOBAL)
        sink.on_access(STACK_OBJECT_ID, 0, 4, False, Category.STACK)
        sink.on_access(2, 0, 4, False, Category.CONST)
        sink.on_alloc(ObjectInfo(3, Category.HEAP, 100, "h"), (1, 2))
        sink.on_access(3, 0, 4, True, Category.HEAP)
        sink.on_free(3)
        sink.on_compute(39)
        sink.on_stack_depth(128)
        return sink

    def test_loads_and_stores(self):
        stats = self._populated().stats
        assert stats.loads == 8
        assert stats.stores == 3
        assert stats.memory_refs == 11

    def test_instruction_accounting_includes_compute(self):
        stats = self._populated().stats
        assert stats.instructions == 11 + 39

    def test_pct_loads_stores(self):
        stats = self._populated().stats
        assert stats.pct_loads == pytest.approx(100 * 8 / 50)
        assert stats.pct_stores == pytest.approx(100 * 3 / 50)

    def test_refs_by_category(self):
        stats = self._populated().stats
        assert stats.refs_by_category[Category.GLOBAL] == 8
        assert stats.refs_by_category[Category.STACK] == 1
        assert stats.refs_by_category[Category.HEAP] == 1
        assert stats.refs_by_category[Category.CONST] == 1
        assert stats.pct_refs(Category.GLOBAL) == pytest.approx(100 * 8 / 11)

    def test_alloc_free_accounting(self):
        stats = self._populated().stats
        assert stats.alloc_count == 1
        assert stats.avg_alloc_size == 100
        assert stats.free_count == 1
        assert stats.avg_free_size == 100

    def test_stack_depth_tracks_size(self):
        stats = self._populated().stats
        assert stats.max_stack_depth == 128
        assert stats.object_sizes[STACK_OBJECT_ID] == 128

    def test_empty_stats_have_zero_rates(self):
        stats = StatsSink().stats
        assert stats.pct_loads == 0.0
        assert stats.avg_alloc_size == 0.0
        assert stats.pct_refs(Category.HEAP) == 0.0


class TestSizeBreakdown:
    def test_only_global_and_heap_counted(self):
        sink = self._mixed_sink()
        row = size_breakdown(sink.stats)
        # stack + const accesses must not appear.
        assert row.static_objects == 2

    def test_reference_percentages_sum_to_100(self):
        sink = self._mixed_sink()
        row = size_breakdown(sink.stats)
        assert sum(row.pct_refs_per_bucket) == pytest.approx(100.0)

    def test_avg_pct_per_object(self):
        sink = self._mixed_sink()
        row = size_breakdown(sink.stats)
        bucket = size_bucket(64)
        assert row.objects_per_bucket[bucket] == 1
        assert row.avg_pct_per_object(bucket) == pytest.approx(
            row.pct_refs_per_bucket[bucket]
        )

    def test_empty_bucket_avg_is_zero(self):
        sink = self._mixed_sink()
        row = size_breakdown(sink.stats)
        assert row.avg_pct_per_object(6) == 0.0

    @staticmethod
    def _mixed_sink() -> StatsSink:
        sink = StatsSink()
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 64, "g"))
        sink.on_object(ObjectInfo(2, Category.CONST, 16, "c"))
        sink.on_alloc(ObjectInfo(3, Category.HEAP, 4000, "h"), ())
        for _ in range(3):
            sink.on_access(1, 0, 4, False, Category.GLOBAL)
        sink.on_access(2, 0, 4, False, Category.CONST)
        sink.on_access(3, 0, 4, False, Category.HEAP)
        sink.on_access(STACK_OBJECT_ID, 0, 4, False, Category.STACK)
        return sink
