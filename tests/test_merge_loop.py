"""Phase 6 regression: incidence-set coalescing vs the O(E) rescan.

The merge loop used to re-key TRGselect edges after each absorption by
rescanning every live edge (``[p for p in select_edges if absorbed in
p]``).  It now maintains a per-node incidence set and touches only the
absorbed node's own edges.  This suite replays the *old* loop (embedded
here as the reference) next to the production one on a randomized
profile with well over 100 compound nodes and asserts that the merge
order, the conflict costs, and every final entity offset are unchanged.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.cache.config import CacheConfig
from repro.core.algorithm import CCDPPlacer
from repro.profiling.profile_data import Entity, Profile
from repro.trace.events import Category

CONFIG = CacheConfig(4096, 32, 1)
NUM_GLOBALS = 140


def big_profile(seed: int = 7, num_globals: int = NUM_GLOBALS) -> Profile:
    """A synthetic profile whose Phase 3 yields >100 compound nodes."""
    rng = random.Random(seed)
    profile = Profile(chunk_size=256, queue_threshold=2 * CONFIG.size)
    profile.entities[0] = Entity(0, Category.STACK, "stack", size=512, refs=50)
    for i in range(num_globals):
        eid = i + 1
        profile.entities[eid] = Entity(
            eid,
            Category.GLOBAL,
            f"g:v{i}",
            size=rng.choice((8, 24, 64, 200, 400)),
            refs=rng.randrange(1, 40),
            decl_index=i,
        )
    for _ in range(6 * num_globals):
        a = rng.randrange(0, num_globals + 1)
        b = rng.randrange(0, num_globals + 1)
        if a == b:
            continue
        pair_a, pair_b = (a, 0), (b, 0)
        key = (pair_a, pair_b) if pair_a <= pair_b else (pair_b, pair_a)
        profile.trg[key] = profile.trg.get(key, 0) + rng.randrange(1, 60)
    return profile


def run_phases_through_trgselect(profile: Profile, engine: str):
    """Drive Phases 0-5 and return the Phase 6 inputs plus the placer."""
    placer = CCDPPlacer(profile, CONFIG, place_heap=False, engine=engine)
    placer._affinity = profile.entity_affinity()
    popular = placer._split_popular_unpopular(profile.popularity())
    heap_prep = placer._preprocess_heap(popular)
    stack_const, _stack_offset = placer._place_stack_and_constants()
    nodes, node_of_entity = placer._create_compound_nodes(popular, heap_prep)
    placer._pack_small_globals(popular, nodes, node_of_entity)
    select_edges = placer._create_trgselect(node_of_entity)
    return placer, nodes, node_of_entity, select_edges, stack_const


def reference_merge_loop(placer, nodes, node_of_entity, select_edges, stack_const):
    """The pre-incidence-index Phase 6 loop, verbatim, recording merges."""
    merger = placer._make_merger(nodes, stack_const)
    merge_order: list[tuple[int, int, int]] = []
    heap = [
        (-weight, nid_a, nid_b)
        for (nid_a, nid_b), weight in select_edges.items()
    ]
    heapq.heapify(heap)
    alias: dict[int, int] = {}

    def resolve(nid: int) -> int:
        while nid in alias:
            nid = alias[nid]
        return nid

    while heap:
        neg_weight, nid_a, nid_b = heapq.heappop(heap)
        nid_a, nid_b = resolve(nid_a), resolve(nid_b)
        if nid_a == nid_b:
            continue
        pair = (nid_a, nid_b) if nid_a <= nid_b else (nid_b, nid_a)
        if select_edges.get(pair) != -neg_weight:
            continue
        del select_edges[pair]
        node1, node2 = nodes[pair[0]], nodes[pair[1]]
        cost = merger.merge(node1, node2)
        merge_order.append((pair[0], pair[1], cost))
        alias[pair[1]] = pair[0]
        del nodes[pair[1]]
        for eid in list(node1.offsets):
            node_of_entity[eid] = pair[0]
        for other_pair in [p for p in select_edges if pair[1] in p]:
            weight = select_edges.pop(other_pair)
            third = other_pair[0] if other_pair[1] == pair[1] else other_pair[1]
            third = resolve(third)
            if third == pair[0]:
                continue
            new_pair = (pair[0], third) if pair[0] <= third else (third, pair[0])
            new_weight = select_edges.get(new_pair, 0) + weight
            select_edges[new_pair] = new_weight
            heapq.heappush(heap, (-new_weight, new_pair[0], new_pair[1]))
    for node in nodes.values():
        if not node.anchored:
            merger.anchor(node)
    return merge_order, merger


@pytest.mark.parametrize("engine", ("scalar", "array"))
@pytest.mark.parametrize("seed", (7, 19))
def test_incidence_coalescing_preserves_merge_order(engine, seed, monkeypatch):
    profile_new = big_profile(seed)
    profile_ref = big_profile(seed)

    new = run_phases_through_trgselect(profile_new, engine)
    ref = run_phases_through_trgselect(profile_ref, engine)
    placer_new, nodes_new, node_of_new, edges_new, stack_const_new = new
    assert len(nodes_new) > 100  # the regression target: a big merge loop

    # Record the production loop's merge order by wrapping the merger.
    recorded: list[tuple[int, int, int]] = []
    original_make = CCDPPlacer._make_merger

    def recording_make(self, nodes, stack_const):
        merger = original_make(self, nodes, stack_const)
        original_merge = merger.merge

        def merge(node1, node2):
            cost = original_merge(node1, node2)
            recorded.append((node1.node_id, node2.node_id, cost))
            return cost

        merger.merge = merge
        return merger

    monkeypatch.setattr(CCDPPlacer, "_make_merger", recording_make)
    placer_new._merge_loop(nodes_new, node_of_new, edges_new, stack_const_new)
    monkeypatch.setattr(CCDPPlacer, "_make_merger", original_make)

    placer_ref, nodes_ref, node_of_ref, edges_ref, stack_const_ref = ref
    ref_order, _merger = reference_merge_loop(
        placer_ref, nodes_ref, node_of_ref, edges_ref, stack_const_ref
    )

    assert recorded == ref_order
    assert len(recorded) > 0
    assert node_of_new == node_of_ref
    assert set(nodes_new) == set(nodes_ref)
    for nid, node in nodes_new.items():
        assert node.offsets == nodes_ref[nid].offsets
