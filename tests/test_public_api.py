"""Public-API integrity: every ``__all__`` name must resolve.

Guards the re-export layers (package ``__init__`` modules) against
drift: a renamed class or a forgotten export fails here rather than in
a user's import.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.cache",
    "repro.core",
    "repro.experiments",
    "repro.memory",
    "repro.naming",
    "repro.profiling",
    "repro.reporting",
    "repro.runtime",
    "repro.trace",
    "repro.vm",
    "repro.workloads",
)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} must declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_and_unique(package):
    module = importlib.import_module(package)
    exported = list(getattr(module, "__all__", []))
    assert len(exported) == len(set(exported)), f"duplicates in {package}"


def test_top_level_version():
    import repro

    assert repro.__version__


def test_baselines_reexports_resolvers():
    from repro.baselines import NaturalResolver, RandomResolver
    from repro.runtime.resolvers import (
        NaturalResolver as RuntimeNatural,
        RandomResolver as RuntimeRandom,
    )

    assert NaturalResolver is RuntimeNatural
    assert RandomResolver is RuntimeRandom


def test_workload_registry_is_importable_via_top_level():
    import repro

    workload = repro.make_workload("mgrid")
    assert workload.name == "mgrid"
