"""Unit tests for the placement map."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.core.placement_map import HeapDecision, PlacementMap


@pytest.fixture
def placement() -> PlacementMap:
    pm = PlacementMap(cache_config=CacheConfig(1024, 32, 1))
    pm.data_base = 0x1000
    pm.global_offsets = {"a": 0, "b": 128}
    pm.heap_table = {0xBEEF: HeapDecision(bin_tag=1, preferred_offset=96)}
    return pm


class TestLookups:
    def test_global_address(self, placement):
        assert placement.global_address("b") == 0x1000 + 128
        assert placement.global_address("missing") is None

    def test_global_cache_offset(self, placement):
        assert placement.global_cache_offset("a") == 0x1000 % 1024
        assert placement.global_cache_offset("missing") is None

    def test_heap_decision(self, placement):
        decision = placement.heap_decision(0xBEEF)
        assert decision.bin_tag == 1
        assert decision.preferred_offset == 96
        assert placement.heap_decision(0xDEAD) is None


class TestValidate:
    def test_clean_layout_passes(self, placement):
        placement.validate({"a": 128, "b": 64})

    def test_overlap_detected(self, placement):
        with pytest.raises(ValueError, match="overlap"):
            placement.validate({"a": 192, "b": 64})

    def test_missing_global_detected(self, placement):
        with pytest.raises(ValueError, match="missing"):
            placement.validate({"a": 64, "b": 64, "c": 8})

    def test_unknown_placed_global_detected(self, placement):
        with pytest.raises(ValueError, match="unknown"):
            placement.validate({"a": 64})


class TestHeapDecision:
    def test_frozen(self):
        decision = HeapDecision(bin_tag=1, preferred_offset=2)
        with pytest.raises(AttributeError):
            decision.bin_tag = 3

    def test_defaults(self):
        decision = HeapDecision()
        assert decision.bin_tag is None
        assert decision.preferred_offset is None
