"""Cache-key stability for the content-addressed artifact store.

The store's correctness hinges on its key schema: two runs with the
same inputs must land on the same digest (warm hits), and any change to
an input that can change the output — cache geometry, placer engine,
trace content, policy parameters — must land on a *different* digest
(no stale aliasing).  These tests pin both directions.
"""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.runtime.resolvers import CCDPResolver, NaturalResolver, RandomResolver
from repro.store import ArtifactStore, use_store
from repro.store import stages
from repro.store.keys import (
    canonical_json,
    code_salt,
    config_fields,
    store_key,
    trace_fingerprint,
)
from repro.trace.buffer import record_trace


@pytest.fixture
def toy_trace(toy_workload):
    return record_trace(toy_workload, toy_workload.train_input)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_numpy_scalars_coerce(self):
        np = pytest.importorskip("numpy")
        assert canonical_json({"n": np.int64(3)}) == canonical_json({"n": 3})
        assert canonical_json(np.float64(1.5)) == canonical_json(1.5)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))


class TestStoreKey:
    def test_same_fields_same_key(self):
        fields = {"trace": "abc", "cache": config_fields(CacheConfig())}
        assert store_key("profile", fields) == store_key("profile", fields)

    def test_kind_distinguishes(self):
        fields = {"trace": "abc"}
        assert store_key("profile", fields) != store_key("placement", fields)

    def test_geometry_distinguishes(self):
        base = CacheConfig(size=8192, line_size=32, associativity=1)
        variants = [
            CacheConfig(size=16384, line_size=32, associativity=1),
            CacheConfig(size=8192, line_size=64, associativity=1),
            CacheConfig(size=8192, line_size=32, associativity=2),
        ]
        base_key = store_key("profile", {"cache": config_fields(base)})
        for other in variants:
            assert (
                store_key("profile", {"cache": config_fields(other)}) != base_key
            )

    def test_salt_env_override_changes_key(self, monkeypatch):
        fields = {"trace": "abc"}
        before = store_key("profile", fields)
        monkeypatch.setenv("REPRO_CACHE_SALT", "other-version")
        assert store_key("profile", fields) != before

    def test_salt_env_override_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SALT", "pinned")
        assert code_salt() == "pinned"


class TestTraceFingerprint:
    def test_identical_rerun_same_fingerprint(self, toy_workload):
        first = record_trace(toy_workload, toy_workload.train_input)
        second = record_trace(
            type(toy_workload)(), type(toy_workload)().train_input
        )
        assert trace_fingerprint(first) == trace_fingerprint(second)

    def test_different_input_different_fingerprint(self, toy_workload):
        train = record_trace(toy_workload, toy_workload.train_input)
        test = record_trace(type(toy_workload)(), toy_workload.test_input)
        assert trace_fingerprint(train) != trace_fingerprint(test)

    def test_fingerprint_memoized(self, toy_trace):
        assert trace_fingerprint(toy_trace) is trace_fingerprint(toy_trace)


class TestResolverPolicy:
    def test_natural(self):
        assert stages.resolver_policy(NaturalResolver()) == {"kind": "natural"}

    def test_random_keyed_by_seed_and_pad(self):
        a = stages.resolver_policy(RandomResolver(seed=1))
        b = stages.resolver_policy(RandomResolver(seed=2))
        c = stages.resolver_policy(RandomResolver(seed=1, max_pad=4096))
        assert a != b
        assert a != c

    def test_subclass_not_recognized(self):
        class TweakedResolver(NaturalResolver):
            pass

        assert stages.resolver_policy(TweakedResolver()) is None

    def test_ccdp_keyed_by_placement_digest(
        self, toy_workload, small_cache
    ):
        from repro.runtime.driver import build_placement

        _profile, placement = build_placement(
            toy_workload, cache_config=small_cache
        )
        policy = stages.resolver_policy(CCDPResolver(placement))
        assert policy["kind"] == "ccdp"
        assert policy["placement"] == stages.placement_digest(placement)
        compact = stages.resolver_policy(
            CCDPResolver(placement, compact_heap=True)
        )
        assert compact != policy


class TestStageRoundTrip:
    def test_byte_identical_rerun_hits(self, tmp_path, toy_workload, small_cache):
        """A rerun with unchanged inputs is served entirely from disk."""
        from repro.runtime.driver import build_placement

        store = ArtifactStore(tmp_path / "store")
        trace = record_trace(toy_workload, toy_workload.train_input)
        with use_store(store):
            pair_cold = build_placement(
                toy_workload, cache_config=small_cache, trace=trace
            )
        assert store.counters.writes >= 2  # profile + placement

        rerun = ArtifactStore(tmp_path / "store")
        fresh_trace = record_trace(
            type(toy_workload)(), toy_workload.train_input
        )
        with use_store(rerun):
            pair_warm = build_placement(
                type(toy_workload)(), cache_config=small_cache, trace=fresh_trace
            )
        assert rerun.counters.misses == 0
        assert rerun.counters.hits >= 2
        assert rerun.counters.writes == 0
        assert pair_warm[0] == pair_cold[0]
        from repro.profiling.serialize import placement_to_dict

        assert placement_to_dict(pair_warm[1]) == placement_to_dict(pair_cold[1])

    def test_geometry_change_misses(self, tmp_path, toy_workload, small_cache):
        from repro.runtime.driver import build_placement

        store = ArtifactStore(tmp_path / "store")
        trace = record_trace(toy_workload, toy_workload.train_input)
        with use_store(store):
            build_placement(toy_workload, cache_config=small_cache, trace=trace)
            hits_before = store.counters.hits
            build_placement(
                toy_workload,
                cache_config=CacheConfig(size=2048, line_size=32, associativity=1),
                trace=trace,
            )
        assert store.counters.hits == hits_before  # nothing aliased

    def test_placement_engine_distinguishes(self, toy_trace, small_cache):
        fingerprint = trace_fingerprint(toy_trace)
        params = stages.profile_params()
        array_fields = stages._placement_fields(
            fingerprint, small_cache, True, "array", params
        )
        scalar_fields = stages._placement_fields(
            fingerprint, small_cache, True, "scalar", params
        )
        assert store_key(stages.KIND_PLACEMENT, array_fields) != store_key(
            stages.KIND_PLACEMENT, scalar_fields
        )

    def test_trace_content_distinguishes(self, toy_workload, small_cache):
        train = record_trace(toy_workload, toy_workload.train_input)
        test = record_trace(type(toy_workload)(), toy_workload.test_input)
        params = stages.profile_params()
        keys = {
            store_key(
                stages.KIND_PROFILE,
                stages._profile_fields(
                    trace_fingerprint(trace), small_cache, params
                ),
            )
            for trace in (train, test)
        }
        assert len(keys) == 2
