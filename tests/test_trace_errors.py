"""Error paths of the trace layer: truncated and corrupt streams.

Every consumer of a trace — :class:`RecordingSink.replay`, the live
:class:`ReplaySink`/:class:`BatchReplaySink`, and the columnar
:class:`TraceRecorder` resolver — must fail loudly with a
:class:`TraceError` naming the offending object id, rather than silently
simulating garbage addresses.
"""

from __future__ import annotations

import pytest

from repro.cache.batch import BatchCacheSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator
from repro.runtime.replay import BatchReplaySink, ReplaySink
from repro.runtime.resolvers import NaturalResolver
from repro.trace.buffer import TraceRecorder, record_trace
from repro.trace.events import Category, ObjectInfo, TraceError
from repro.trace.sinks import RecordingSink, TraceSink


def _global_info(obj_id: int = 1, size: int = 64) -> ObjectInfo:
    return ObjectInfo(
        obj_id=obj_id, category=Category.GLOBAL, size=size, symbol=f"g{obj_id}"
    )


class TestRecordingSinkReplay:
    def _recording_with_access(self, obj_id: int) -> RecordingSink:
        sink = RecordingSink()
        sink.on_object(_global_info(1))
        sink.on_access(obj_id, 0, 4, False, Category.GLOBAL)
        sink.on_end()
        return sink

    def test_valid_stream_replays(self):
        self._recording_with_access(1).replay(TraceSink())

    def test_access_to_undeclared_object_raises(self):
        recording = self._recording_with_access(99)
        with pytest.raises(TraceError, match="unknown object id 99"):
            recording.replay(TraceSink())

    def test_free_of_undeclared_object_raises(self):
        recording = RecordingSink()
        recording.on_free(7)
        recording.on_end()
        with pytest.raises(TraceError, match="unknown object id 7"):
            recording.replay(TraceSink())

    def test_allocated_object_becomes_known(self):
        recording = RecordingSink()
        info = ObjectInfo(obj_id=5, category=Category.HEAP, size=32, symbol="h5")
        recording.on_alloc(info, (0x1000,))
        recording.on_access(5, 0, 4, True, Category.HEAP)
        recording.on_free(5)
        recording.on_end()
        recording.replay(TraceSink())  # must not raise

    def test_error_precedes_delivery_to_target_sink(self):
        """The bad event must not leak into the downstream sink."""

        class CountingSink(TraceSink):
            accesses = 0

            def on_access(self, *args) -> None:
                self.accesses += 1

        recording = RecordingSink()
        recording.on_object(_global_info(1))
        recording.on_access(1, 0, 4, False, Category.GLOBAL)
        recording.on_access(42, 0, 4, False, Category.GLOBAL)
        recording.on_end()
        target = CountingSink()
        with pytest.raises(TraceError):
            recording.replay(target)
        assert target.accesses == 1


class TestReplaySinkErrors:
    def _config(self) -> CacheConfig:
        return CacheConfig(size=1024, line_size=32, associativity=1)

    def test_scalar_replay_rejects_unknown_object(self):
        sink = ReplaySink(NaturalResolver(), CacheSimulator(self._config()))
        sink.on_object(_global_info(1))
        sink.on_access(1, 0, 4, False, Category.GLOBAL)
        with pytest.raises(TraceError, match="unknown object id 33"):
            sink.on_access(33, 0, 4, False, Category.GLOBAL)

    def test_batch_replay_rejects_unknown_object(self):
        sink = BatchReplaySink(
            NaturalResolver(), BatchCacheSimulator(self._config())
        )
        sink.on_object(_global_info(1))
        sink.on_access(1, 0, 4, False, Category.GLOBAL)
        with pytest.raises(TraceError, match="unknown object id 33"):
            sink.on_access(33, 0, 4, False, Category.GLOBAL)

    def test_replay_rejects_use_after_free(self):
        """A freed heap object leaves the resolver; later access is corrupt."""
        sink = ReplaySink(NaturalResolver(), CacheSimulator(self._config()))
        info = ObjectInfo(obj_id=9, category=Category.HEAP, size=48, symbol="h9")
        sink.on_alloc(info, (0x2000,))
        sink.on_access(9, 0, 4, True, Category.HEAP)
        sink.on_free(9)
        with pytest.raises(TraceError, match="unknown object id 9"):
            sink.on_access(9, 0, 4, False, Category.HEAP)


class TestTraceRecorderErrors:
    def test_truncated_recording_cannot_resolve(self):
        recorder = TraceRecorder()
        recorder.on_object(_global_info(1))
        recorder.on_access(1, 0, 4, False, Category.GLOBAL)
        # no on_end(): the recording is truncated
        with pytest.raises(TraceError, match="truncated trace"):
            recorder.resolve(NaturalResolver())

    def test_corrupt_recording_names_the_bad_object(self):
        recorder = TraceRecorder()
        recorder.on_object(_global_info(1))
        recorder.on_access(1, 0, 4, False, Category.GLOBAL)
        recorder.on_access(17, 8, 4, False, Category.GLOBAL)
        recorder.on_end()
        with pytest.raises(TraceError, match="unknown object id 17"):
            recorder.resolve(NaturalResolver())

    def test_recorded_workload_trace_resolves_clean(self, toy_workload):
        trace = record_trace(toy_workload, toy_workload.train_input)
        addresses = trace.resolve(NaturalResolver())
        assert len(addresses) == len(trace)
        assert (addresses >= 0).all()
