"""Sweep grid construction, verdicts, inversion detection, execution."""

from __future__ import annotations

import pytest

from repro.runtime.parallel import ExperimentSpec
from repro.sched.jobs import plan_experiments
from repro.sweep import (
    QUICK_ASSOCIATIVITIES,
    QUICK_SIZES,
    QUICK_WORKLOADS,
    SweepCell,
    build_grid,
    default_cost_model,
    find_inversions,
    render_sweep,
    run_sweep,
    verdict,
)


class TestGrid:
    def test_default_grid_shape(self):
        cells = build_grid()
        assert len(cells) == 5 * 3 * 3
        assert len({cell.label for cell in cells}) == len(cells)

    def test_quick_grid_is_two_by_two(self):
        cells = build_grid(
            sizes=QUICK_SIZES,
            associativities=QUICK_ASSOCIATIVITIES,
            workloads=QUICK_WORKLOADS,
        )
        assert len(cells) == 4
        assert {cell.workload for cell in cells} == set(QUICK_WORKLOADS)

    def test_auto_cost_model_tracks_ways(self):
        assert default_cost_model(1) == "direct"
        assert default_cost_model(4) == "assoc"
        cells = build_grid(
            sizes=(8192,), associativities=(1, 2), workloads=("espresso",)
        )
        by_assoc = {cell.associativity: cell.cost_model for cell in cells}
        assert by_assoc == {1: "direct", 2: "assoc"}

    def test_explicit_cost_model_applies_uniformly(self):
        cells = build_grid(
            sizes=(8192,),
            associativities=(1, 2),
            workloads=("espresso",),
            cost_model="two-level",
        )
        assert {cell.cost_model for cell in cells} == {"two-level"}

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="invalid geometry"):
            build_grid(sizes=(8192,), associativities=(3,))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workloads: doom"):
            build_grid(workloads=("doom",))

    def test_unknown_cost_model_rejected(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            build_grid(cost_model="quantum")

    def test_family_workloads_resolve(self):
        cells = build_grid(
            sizes=(8192,),
            associativities=(1,),
            workloads=("layout-stress", "alloc-mix"),
        )
        assert [cell.workload for cell in cells] == ["layout-stress", "alloc-mix"]

    def test_cell_spec_carries_cost_model(self):
        cell = SweepCell("espresso", 8192, 32, 4, "assoc")
        spec = cell.spec()
        assert isinstance(spec, ExperimentSpec)
        assert spec.cost_model == "assoc"
        assert spec.cache_config.associativity == 4
        assert cell.geometry == "8192:32:4"


class TestVerdicts:
    def test_verdict_bands(self):
        assert verdict(10.0, 5.0) == "win"
        assert verdict(5.0, 10.0) == "loss"
        assert verdict(5.0, 5.05) == "tie"
        assert verdict(5.05, 5.0) == "tie"

    def _cell(self, workload, assoc, result_verdict):
        return {
            "workload": workload,
            "size": 8192,
            "line_size": 32,
            "associativity": assoc,
            "verdict": result_verdict,
            "ok": True,
        }

    def test_inversion_requires_differing_verdicts(self):
        cells = [
            self._cell("a", 1, "win"),
            self._cell("a", 4, "tie"),
            self._cell("b", 1, "win"),
            self._cell("b", 4, "win"),
        ]
        inversions = find_inversions(cells)
        assert len(inversions) == 1
        assert inversions[0]["workload"] == "a"
        assert inversions[0]["verdicts"] == {"1": "win", "4": "tie"}

    def test_single_associativity_never_inverts(self):
        assert find_inversions([self._cell("a", 1, "win")]) == []

    def test_failed_cells_are_skipped(self):
        broken = self._cell("a", 4, None)
        broken["ok"] = False
        assert find_inversions([self._cell("a", 1, "win"), broken]) == []


class TestScheduling:
    def test_cost_models_share_stages_but_not_place_jobs(self):
        from repro.cache.config import CacheConfig

        config = CacheConfig(size=8192, line_size=32, associativity=4)
        specs = [
            ExperimentSpec(
                workload="espresso", cache_config=config, cost_model=model
            )
            for model in ("direct", "assoc")
        ]
        graph, aggregates = plan_experiments(specs)
        kinds = {}
        for job in graph.topo_order():
            kinds.setdefault(job.kind, []).append(job)
        # One trace per input, one profile, one natural measure -- but a
        # place (and ccdp measure) job per cost model.
        assert len(kinds["trace"]) == 2
        assert len(kinds["profile"]) == 1
        assert len(kinds["place"]) == 2
        assert len(kinds["measure"]) == 3
        assert len(aggregates) == 2

    def test_geometries_share_traces_only(self):
        cells = build_grid(
            sizes=(8192,), associativities=(1, 4), workloads=("espresso",)
        )
        graph, _aggregates = plan_experiments([cell.spec() for cell in cells])
        kinds = {}
        for job in graph.topo_order():
            kinds.setdefault(job.kind, []).append(job)
        # The TRG depends on geometry, so profiles/places split per
        # associativity; the raw traces are still shared.
        assert len(kinds["trace"]) == 2
        assert len(kinds["profile"]) == 2
        assert len(kinds["place"]) == 2
        assert len(kinds["measure"]) == 4

    def test_unknown_cost_model_rejected_at_plan_time(self):
        spec = ExperimentSpec(workload="espresso", cost_model="quantum")
        with pytest.raises(ValueError, match="unknown cost model"):
            plan_experiments([spec])


class TestRunSweep:
    def test_layout_stress_inverts_across_ways(self):
        cells = build_grid(
            sizes=(8192,),
            associativities=(1, 4),
            workloads=("layout-stress",),
        )
        payload = run_sweep(cells, jobs=1)
        assert payload["failed"] == 0
        assert "executed=" in payload["sched"]
        by_assoc = {
            cell["associativity"]: cell for cell in payload["cells"]
        }
        assert by_assoc[1]["verdict"] == "win"
        assert by_assoc[4]["verdict"] == "tie"
        assert by_assoc[1]["natural_miss_rate"] > 90.0
        assert by_assoc[4]["natural_miss_rate"] < 1.0
        assert len(payload["inversions"]) == 1
        rendered = render_sweep(payload)
        assert "verdict inversions" in rendered
        assert "layout-stress" in rendered
