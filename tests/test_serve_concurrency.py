"""Concurrency and soak coverage for the serve daemon.

The headline scenario from the service issue: sixteen threaded clients
hammer one daemon with the same placement request and must get bit-for-
bit identical placement maps — identical to what the batch pipeline
computes for the same inputs — while the daemon's dedup counters prove
the shared stage ran exactly once.  Shutdown must leave nothing behind:
no live threads, no pins, no shm segments, no spooled uploads.

Determinism trick: every multi-client test first submits a short
``sleep`` job.  The dispatcher's blocking ``queue.get`` picks it up
immediately and holds the (single) dispatcher for its duration, so all
subsequent submissions pile into the bounded queue and drain as *one*
batch — making the coalescing counters exact instead of racy.
"""

from __future__ import annotations

import multiprocessing
import threading
from pathlib import Path

from tests.conftest import ToyWorkload

from repro.cache.config import PAPER_CACHE, CacheConfig
from repro.profiling.serialize import placement_to_dict
from repro.runtime.driver import build_placement
from repro.serve import Daemon, ServeClient, ServeConfig
from repro.store import stages as store_stages
from repro.trace.buffer import record_trace
from repro.workloads import make_workload

SHM_DIR = Path("/dev/shm")

#: The soak width the acceptance criteria name.
CLIENTS = 16

#: How long the dispatcher-holding sleep job pins the queue, seconds.
HOLD = 0.4


def _shm_segments() -> set[str]:
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("repro-")}


def _run_clients(port: int, payloads: list[dict], tenant: str | None = None):
    """Fan ``payloads`` out over one thread per payload; returns records."""
    results: list[dict | None] = [None] * len(payloads)
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(payloads))

    def worker(index: int, payload: dict) -> None:
        client = ServeClient(port=port, tenant=tenant, timeout=120.0)
        barrier.wait()
        try:
            kind = payload.pop("kind")
            results[index] = client.run(kind, timeout=240.0, **payload)
        except BaseException as exc:  # surfaced to the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i, dict(p)), daemon=True)
        for i, p in enumerate(payloads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    assert not errors, f"client threads failed: {errors!r}"
    assert all(r is not None for r in results)
    return results


def test_sixteen_client_soak_dedups_and_shuts_down_clean(tmp_path, toy_workload):
    """The acceptance scenario: 16 clients, 1 execution, 0 leaks."""
    shm_before = _shm_segments()
    daemon = Daemon(
        ServeConfig(
            cache_dir=str(tmp_path / "serve-store"),
            announce=False,
            queue_depth=64,
            batch_max=CLIENTS,
        )
    ).start()
    try:
        client = ServeClient(port=daemon.port)
        trace = record_trace(toy_workload, "train")
        try:
            uploaded = client.upload_trace("toyprog", "train", trace)
        finally:
            trace.close()
        assert uploaded["workload"] == "toyprog"

        # Hold the dispatcher so all 16 placements coalesce in one batch.
        client.submit("sleep", seconds=HOLD)
        request = {
            "kind": "placement",
            "workload": "toyprog",
            "input": "train",
            "cache": [1024, 32, 1],
            "place_heap": True,
        }
        records = _run_clients(daemon.port, [request] * CLIENTS)

        assert all(r["state"] == "done" for r in records)
        digests = {r["result"]["digest"] for r in records}
        assert len(digests) == 1
        placements = [r["result"]["placement"] for r in records]
        assert all(p == placements[0] for p in placements)

        # The batch pipeline on the same workload must agree bit-for-bit.
        _profile, placement = build_placement(
            ToyWorkload(), "train", CacheConfig(1024, 32, 1), place_heap=True
        )
        assert placements[0] == placement_to_dict(placement)
        assert digests == {store_stages.placement_digest(placement)}

        counters = daemon.telemetry.counters
        # One cold execution total; every other client was served by
        # batch-level coalescing or a warm store hit.
        assert counters.get("serve.stages.executed", 0) == 1
        deduped = counters.get("serve.jobs.deduped", 0)
        warm = counters.get("serve.jobs.warm", 0)
        assert deduped + warm == CLIENTS - 1
        assert deduped >= 1, "no cross-client coalescing happened"
        assert counters.get("serve.jobs.failed", 0) == 0
        assert counters.get("serve.jobs.completed", 0) == CLIENTS + 1  # + sleep

        pins = list(daemon.store.pins_dir.glob("*.pin"))
        assert pins, "live daemon should hold trace pins"
    finally:
        daemon.stop()

    # -- clean-exit assertions ------------------------------------------------
    assert daemon.state == "stopped"
    assert daemon._thread is not None and not daemon._thread.is_alive()
    assert daemon._dispatcher is not None and not daemon._dispatcher.is_alive()
    assert multiprocessing.active_children() == []
    assert list(daemon.store.pins_dir.glob("*.pin")) == []
    uploads = daemon.store.root / "uploads"
    assert not uploads.exists() or list(uploads.iterdir()) == []
    assert _shm_segments() == shm_before, "daemon leaked /dev/shm segments"


def test_registry_placement_matches_batch_cli_path(tmp_path):
    """A served registry placement equals the batch pipeline's output."""
    daemon = Daemon(
        ServeConfig(cache_dir=str(tmp_path / "serve-store"), announce=False)
    ).start()
    try:
        client = ServeClient(port=daemon.port)
        record = client.run(
            "placement",
            workload="compress",
            input="smalltest",
            cache=[8192, 32, 1],
        )
        assert record["state"] == "done", record["error"]
        _profile, placement = build_placement(
            make_workload("compress"), "smalltest", PAPER_CACHE
        )
        assert record["result"]["placement"] == placement_to_dict(placement)
        assert record["result"]["digest"] == store_stages.placement_digest(
            placement
        )
    finally:
        daemon.stop()


def test_experiment_jobs_share_stages_across_clients(tmp_path):
    """Distinct experiment requests dedup stages through the job graph."""
    daemon = Daemon(
        ServeConfig(
            cache_dir=str(tmp_path / "serve-store"),
            announce=False,
            queue_depth=16,
            batch_max=8,
        )
    ).start()
    try:
        client = ServeClient(port=daemon.port)
        client.submit("sleep", seconds=HOLD)
        same = {
            "kind": "experiment",
            "workload": "mgrid",
            "same_input": True,
            "cache": [8192, 32, 1],
        }
        cross = dict(same, same_input=False)
        a1, a2, b = _run_clients(daemon.port, [same, same, cross])

        assert a1["state"] == a2["state"] == b["state"] == "done"
        # Identical requests coalesced into one graph node...
        assert a1["result"] == a2["result"]
        assert daemon.telemetry.counters.get("serve.jobs.deduped", 0) >= 1
        # ...and the *distinct* request still shared the train-side
        # stages (trace, profile, placement) through the scheduler.
        assert a1["meta"]["stages_deduped"] >= 1
        assert a1["meta"]["stages_executed"] >= 1
        assert b["result"]["test_input"] != b["result"]["train_input"]
        assert a1["result"]["test_input"] == a1["result"]["train_input"]
        assert (
            a1["result"]["placement_digest"] == b["result"]["placement_digest"]
        )
    finally:
        daemon.stop()


def test_tenants_are_isolated_stores(tmp_path, toy_workload):
    """Same names, different tenants, different traces — no bleed-through."""
    daemon = Daemon(
        ServeConfig(cache_dir=str(tmp_path / "serve-store"), announce=False)
    ).start()
    try:
        for tenant, input_name in (("team-a", "train"), ("team-b", "test")):
            client = ServeClient(port=daemon.port, tenant=tenant)
            trace = record_trace(toy_workload, input_name)
            try:
                client.upload_trace("prog", "main", trace)
            finally:
                trace.close()

        request = {
            "kind": "placement",
            "workload": "prog",
            "input": "main",
            "cache": [1024, 32, 1],
        }
        result_a = _run_clients(daemon.port, [request], tenant="team-a")[0]
        result_b = _run_clients(daemon.port, [request], tenant="team-b")[0]
        assert result_a["state"] == result_b["state"] == "done"
        assert result_a["tenant"] == "team-a"
        assert result_b["tenant"] == "team-b"
        # Different uploaded traces under the same names: placements differ.
        assert result_a["result"]["digest"] != result_b["result"]["digest"]
        root = daemon.store.root
        assert (root / "tenants" / "team-a").is_dir()
        assert (root / "tenants" / "team-b").is_dir()

        # The default tenant never saw the upload, so the name is unknown.
        status, payload = ServeClient(port=daemon.port).try_submit(request)
        assert status == 400
        assert "unknown workload" in payload["error"]
    finally:
        daemon.stop()
