"""Property-based tests of the full pipeline over generated workloads.

Hypothesis drives the parametric workload kit through the whole
profile -> place -> simulate pipeline and checks the invariants that
must hold for *any* program:

* the placement map is structurally valid (every global placed, none
  overlapping);
* the reference stream is placement-invariant (placements move data,
  never change what the program does);
* placement is deterministic;
* CCDP never catastrophically regresses the miss rate;
* the custom allocator never overlaps live heap objects.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.cache.config import CacheConfig
from repro.runtime.driver import build_placement, measure, run_experiment
from repro.runtime.resolvers import CCDPResolver, NaturalResolver
from repro.trace.events import Category
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

specs = st.builds(
    SyntheticSpec,
    hot_globals=st.integers(1, 5),
    hot_size=st.sampled_from((64, 256, 1024, 1920)),
    cold_spacer=st.sampled_from((0, 512, 6272, 7168)),
    small_cluster=st.integers(0, 6),
    iterations=st.integers(150, 400),
    heap_churn=st.integers(0, 2),
    heap_persistent=st.integers(0, 6),
    heap_object_bytes=st.sampled_from((16, 48, 96)),
    stack_frame_bytes=st.sampled_from((32, 96, 256)),
    constant_bytes=st.sampled_from((0, 128, 512)),
)

CACHE = CacheConfig(2048, 32, 1)


@given(specs)
@settings(max_examples=25, deadline=None)
def test_placement_map_is_always_valid(spec):
    workload = SyntheticWorkload(spec)
    profile, placement = build_placement(workload, cache_config=CACHE)
    sizes = {
        e.key.split(":", 1)[1]: e.size
        for e in profile.entities_of(Category.GLOBAL)
    }
    placement.validate(sizes)
    assert placement.data_base % 8 == 0
    assert placement.stack_base % 8 == 0


@given(specs)
@settings(max_examples=15, deadline=None)
def test_reference_stream_is_placement_invariant(spec):
    workload = SyntheticWorkload(spec)
    _profile, placement = build_placement(workload, cache_config=CACHE)
    natural = measure(workload, "test", NaturalResolver(), CACHE)
    ccdp = measure(workload, "test", CCDPResolver(placement), CACHE)
    assert natural.cache.accesses == ccdp.cache.accesses
    assert (
        natural.cache.accesses_by_category == ccdp.cache.accesses_by_category
    )


@given(specs)
@settings(max_examples=15, deadline=None)
def test_placement_is_deterministic(spec):
    first = build_placement(SyntheticWorkload(spec), cache_config=CACHE)[1]
    second = build_placement(SyntheticWorkload(spec), cache_config=CACHE)[1]
    assert first.global_offsets == second.global_offsets
    assert first.stack_base == second.stack_base
    assert first.heap_table == second.heap_table


@given(specs)
@settings(max_examples=15, deadline=None)
def test_ccdp_never_catastrophic(spec):
    # Placement trains on one input and is measured on another, so on
    # adversarial synthetic layouts it can lose (e.g. a collided XOR heap
    # name whose bin arena aliases the hot globals on this 2 KB cache).
    # A 160-spec sweep of this strategy measured worst cases of 2.26x /
    # +7.4pp; the bound asserts "never catastrophic", not "never worse".
    result = run_experiment(SyntheticWorkload(spec), cache_config=CACHE)
    assert result.ccdp.cache.miss_rate <= (
        result.original.cache.miss_rate * 2.5 + 10.0
    )


@given(specs)
@settings(max_examples=10, deadline=None)
def test_custom_heap_never_overlaps(spec):
    assume(spec.heap_churn or spec.heap_persistent)
    workload = SyntheticWorkload(spec)
    _profile, placement = build_placement(workload, cache_config=CACHE)
    resolver = CCDPResolver(placement)
    measure(workload, "test", resolver, CACHE)
    resolver._heap.check_invariants()
