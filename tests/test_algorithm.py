"""Tests for the full 9-phase placement algorithm."""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.core.algorithm import CCDPPlacer
from repro.profiling.profiler import ProfilerSink
from repro.trace.events import Category
from repro.vm.program import Program


def profile_program(body, cache=None):
    sink = ProfilerSink(cache_config=cache or CacheConfig(1024, 32, 1))
    program = Program(sink)
    body(program)
    program.finish()
    return sink.profile


def conflict_profile():
    """Two hot globals accessed in lockstep + a cold one + heap churn."""

    def body(p):
        hot_a = p.add_global("hot_a", 256)
        cold = p.add_global("cold", 256)
        hot_b = p.add_global("hot_b", 256)
        p.start()
        with p.function(0x1, frame_bytes=32):
            nodes = []
            for index in range(120):
                p.load(hot_a, (index * 8) % 256)
                p.load(hot_b, (index * 8) % 256)
                p.store_local(0)
                if index % 10 == 0:
                    p.call(0x2)
                    node = p.malloc(40)
                    p.ret()
                    p.store(node, 0)
                    p.load(node, 8)
                    p.free(node)

    return profile_program(body)


class TestPhase0:
    def test_hot_entities_popular(self):
        profile = conflict_profile()
        placer = CCDPPlacer(profile, CacheConfig(1024, 32, 1))
        popularity = profile.popularity()
        popular = placer._split_popular_unpopular(popularity)
        assert profile.entity_by_key("g:hot_a").eid in popular
        assert profile.entity_by_key("g:hot_b").eid in popular

    def test_zero_popularity_never_popular(self):
        profile = conflict_profile()
        placer = CCDPPlacer(profile, CacheConfig(1024, 32, 1))
        popular = placer._split_popular_unpopular(profile.popularity())
        cold = profile.entity_by_key("g:cold")
        assert cold.eid not in popular

    def test_cutoff_zero_yields_empty(self):
        profile = conflict_profile()
        placer = CCDPPlacer(
            profile, CacheConfig(1024, 32, 1), popularity_cutoff=0.0
        )
        assert placer._split_popular_unpopular(profile.popularity()) == set()


class TestPlacementMap:
    def test_every_global_placed_without_overlap(self):
        profile = conflict_profile()
        placement = CCDPPlacer(profile, CacheConfig(1024, 32, 1)).place()
        sizes = {
            e.key.split(":", 1)[1]: e.size
            for e in profile.entities_of(Category.GLOBAL)
        }
        placement.validate(sizes)  # raises on overlap or omission

    def test_hot_globals_end_up_on_disjoint_lines(self):
        profile = conflict_profile()
        config = CacheConfig(1024, 32, 1)
        placement = CCDPPlacer(profile, config).place()
        offset_a = placement.global_cache_offset("hot_a")
        offset_b = placement.global_cache_offset("hot_b")
        lines_a = {(offset_a + byte) // 32 % 32 for byte in range(0, 256, 32)}
        lines_b = {(offset_b + byte) // 32 % 32 for byte in range(0, 256, 32)}
        assert not (lines_a & lines_b)

    def test_stack_base_respects_chosen_offset(self):
        profile = conflict_profile()
        config = CacheConfig(1024, 32, 1)
        placement = CCDPPlacer(profile, config).place()
        assert placement.stack_base % 8 == 0
        assert placement.stack_base % config.size == (
            placement.stack_base % config.size
        )

    def test_heap_table_contains_sequential_name(self):
        profile = conflict_profile()
        placement = CCDPPlacer(profile, CacheConfig(1024, 32, 1)).place()
        # The scratch allocation site (0x1, 0x2 call chain) has sequential
        # lifetimes -> a unique XOR name eligible for the table.
        assert len(placement.heap_table) >= 1
        decision = next(iter(placement.heap_table.values()))
        assert (
            decision.bin_tag is not None or decision.preferred_offset is not None
        )

    def test_place_heap_false_empties_heap_table(self):
        profile = conflict_profile()
        placement = CCDPPlacer(
            profile, CacheConfig(1024, 32, 1), place_heap=False
        ).place()
        assert placement.heap_table == {}

    def test_name_depth_propagated(self):
        profile = conflict_profile()
        placement = CCDPPlacer(profile, CacheConfig(1024, 32, 1)).place()
        assert placement.name_depth == profile.name_depth

    def test_stats_recorded(self):
        profile = conflict_profile()
        placer = CCDPPlacer(profile, CacheConfig(1024, 32, 1))
        placer.place()
        assert placer.stats.popular_entities > 0
        assert placer.stats.merges + placer.stats.anchors > 0


class TestSmallGlobalPacking:
    def test_related_small_globals_share_a_line(self):
        def body(p):
            smalls = [p.add_global(f"s{i}", 8) for i in range(4)]
            p.start()
            with p.function(0x1):
                for index in range(200):
                    p.load(smalls[index % 4], 0)

        profile = profile_program(body)
        config = CacheConfig(1024, 32, 1)
        placement = CCDPPlacer(profile, config).place()
        lines = {
            placement.global_cache_offset(f"s{i}") // config.line_size
            for i in range(4)
        }
        assert len(lines) == 1  # all four 8-byte globals share one line

    def test_packed_globals_do_not_overlap(self):
        def body(p):
            smalls = [p.add_global(f"s{i}", 8) for i in range(4)]
            p.start()
            with p.function(0x1):
                for index in range(200):
                    p.load(smalls[index % 4], 0)

        profile = profile_program(body)
        placement = CCDPPlacer(profile, CacheConfig(1024, 32, 1)).place()
        offsets = sorted(placement.global_offsets[f"s{i}"] for i in range(4))
        for first, second in zip(offsets, offsets[1:]):
            assert second - first >= 8


class TestEdgeCases:
    def test_empty_profile(self):
        def body(p):
            p.start()

        profile = profile_program(body)
        placement = CCDPPlacer(profile, CacheConfig(1024, 32, 1)).place()
        assert placement.global_offsets == {}

    def test_untouched_globals_still_placed(self):
        def body(p):
            p.add_global("never_used", 64)
            p.start()

        profile = profile_program(body)
        placement = CCDPPlacer(profile, CacheConfig(1024, 32, 1)).place()
        assert "never_used" in placement.global_offsets

    def test_object_larger_than_cache(self):
        def body(p):
            giant = p.add_global("giant", 4096)
            p.start()
            with p.function(0x1):
                for index in range(300):
                    p.load(giant, (index * 64) % 4096)

        profile = profile_program(body)
        placement = CCDPPlacer(profile, CacheConfig(1024, 32, 1)).place()
        assert "giant" in placement.global_offsets
