"""Tests for the experiment harnesses (on fast subsets of the suite)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    clear_cache,
    paper_cache,
    run_figure3,
    run_geometry_sweep,
    run_random_vs_natural,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

FAST = ["go", "mgrid"]
FAST_HEAP = ("espresso",)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestPaperCache:
    def test_geometry(self):
        config = paper_cache()
        assert config.size == 8192
        assert config.line_size == 32
        assert config.associativity == 1


class TestTable1:
    def test_rows_for_both_inputs(self):
        result = run_table1(FAST)
        assert len(result.rows) == 4
        assert {row.program for row in result.rows} == set(FAST)

    def test_percentages_consistent(self):
        result = run_table1(FAST)
        for row in result.rows:
            split = row.pct_stack + row.pct_global + row.pct_heap + row.pct_const
            assert split == pytest.approx(100.0, abs=0.1)
            assert 0 < row.pct_loads + row.pct_stores < 100

    def test_render_contains_programs(self):
        text = run_table1(FAST).render()
        assert "go" in text and "mgrid" in text


class TestTables2And4:
    def test_rows_and_average(self):
        result = run_table2(FAST)
        assert len(result.rows) == 2
        average = result.average
        assert average.program == "Average"
        assert average.original.d_miss == pytest.approx(
            sum(r.original.d_miss for r in result.rows) / 2
        )

    def test_category_columns_sum_to_dmiss(self):
        result = run_table2(FAST)
        for row in result.rows:
            for rates in (row.original, row.ccdp):
                total = rates.stack + rates.global_ + rates.heap + rates.const
                assert total == pytest.approx(rates.d_miss, abs=0.01)

    def test_table4_uses_other_input(self):
        t2 = run_table2(FAST)
        t4 = run_table4(FAST)
        # Different inputs -> different baseline miss rates (almost surely).
        assert t2.row_for("go").original.d_miss != pytest.approx(
            t4.row_for("go").original.d_miss, abs=1e-9
        )

    def test_row_for_unknown_raises(self):
        with pytest.raises(KeyError):
            run_table2(FAST).row_for("nope")

    def test_render(self):
        text = run_table4(FAST).render()
        assert "D-Miss" in text and "Average" in text


class TestTable3:
    def test_bucket_percentages(self):
        result = run_table3(FAST)
        for row in result.rows.values():
            assert sum(row.pct_refs_per_bucket) == pytest.approx(100.0, abs=0.1)

    def test_mgrid_dominated_by_giant_bucket(self):
        result = run_table3(["mgrid"])
        row = result.rows["mgrid"]
        assert row.pct_refs_per_bucket[-1] > 90

    def test_render(self):
        assert "mgrid" in run_table3(["mgrid"]).render()


class TestTable5:
    def test_rows_have_paging_data(self):
        result = run_table5(FAST_HEAP)
        row = result.row_for("espresso")
        assert row.original_pages > 0
        assert row.ccdp_working_set > 0

    def test_render(self):
        assert "espresso" in run_table5(FAST_HEAP).render()


class TestFigure3:
    def test_scatter_points_exist(self):
        result = run_figure3(FAST_HEAP)
        points = result.points["espresso"]
        assert len(points) > 100
        shape = result.shapes["espresso"]
        assert shape.num_objects == len(points)

    def test_render(self):
        assert "espresso" in run_figure3(FAST_HEAP).render()


class TestRandomVsNatural:
    def test_rows_and_mean(self):
        result = run_random_vs_natural(FAST, seeds=(1, 2))
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.natural_miss > 0
            assert row.random_miss > 0

    def test_render(self):
        text = run_random_vs_natural(["mgrid"], seeds=(1,)).render()
        assert "%Increase" in text


class TestGeometrySweep:
    def test_sweep_rows(self):
        result = run_geometry_sweep(("go",))
        rows = result.rows_for("go")
        assert len(rows) == 5
        evaluated = {row.evaluated_on for row in rows}
        assert "8K/32B/direct" in evaluated
        assert "8K/32B/4-way" in evaluated

    def test_bigger_direct_cache_reduces_natural_misses(self):
        result = run_geometry_sweep(("go",))
        by_geometry = {row.evaluated_on: row for row in result.rows_for("go")}
        assert (
            by_geometry["16K/32B/direct"].natural_miss
            <= by_geometry["4K/32B/direct"].natural_miss
        )

    def test_render(self):
        assert "Target" in run_geometry_sweep(("go",)).render()


class TestMemoKeyGeometry:
    """Distinct geometries must never alias one memo entry, even when a
    CacheConfig subclass defines degenerate equality/hashing."""

    def test_degenerate_config_subclass_does_not_alias(self):
        from repro.cache.config import CacheConfig
        from repro.experiments.common import cached_natural_run

        class CollidingConfig(CacheConfig):
            """Every instance hashes and compares equal — worst case."""

            def __hash__(self):
                return 42

            def __eq__(self, other):
                return isinstance(other, CollidingConfig)

        small = CollidingConfig(size=1024, line_size=32, associativity=1)
        large = CollidingConfig(size=65536, line_size=32, associativity=1)
        small_run = cached_natural_run("go", cache_config=small)
        large_run = cached_natural_run("go", cache_config=large)
        # A key built from the config object would have returned the
        # memoized small-cache result for the large cache.
        assert small_run.cache.misses > large_run.cache.misses

    def test_config_key_is_explicit_fields(self):
        from repro.experiments.common import _config_key
        from repro.cache.config import CacheConfig

        key = _config_key(CacheConfig(size=8192, line_size=32, associativity=2))
        assert key == (8192, 32, 2)
