"""Unit tests for the Program execution context."""

from __future__ import annotations

import pytest

from repro.trace.events import Category, TraceError
from repro.trace.sinks import RecordingSink
from repro.vm.program import Program


@pytest.fixture
def sink() -> RecordingSink:
    return RecordingSink()


@pytest.fixture
def program(sink) -> Program:
    return Program(sink)


class TestDeclaration:
    def test_globals_get_sequential_ids_and_decl_order(self, program):
        a = program.add_global("a", 8)
        b = program.add_global("b", 16)
        assert a.obj_id == 1 and b.obj_id == 2
        program.start()

    def test_constants_are_const_category(self, program):
        c = program.add_constant("c", 8)
        assert c.category is Category.CONST

    def test_declaration_after_start_rejected(self, program):
        program.start()
        with pytest.raises(TraceError):
            program.add_global("late", 8)

    def test_zero_size_rejected(self, program):
        with pytest.raises(TraceError):
            program.add_global("empty", 0)

    def test_start_publishes_static_objects(self, program, sink):
        program.add_global("a", 8)
        program.add_constant("c", 8)
        program.start()
        assert [info.symbol for info in sink.objects] == ["a", "c"]


class TestRunControl:
    def test_double_start_rejected(self, program):
        program.start()
        with pytest.raises(TraceError):
            program.start()

    def test_finish_before_start_rejected(self, program):
        with pytest.raises(TraceError):
            program.finish()

    def test_double_finish_rejected(self, program):
        program.start()
        program.finish()
        with pytest.raises(TraceError):
            program.finish()

    def test_finish_reports_stack_depth_and_end(self, program, sink):
        program.start()
        program.push_frame(256)
        program.pop_frame()
        program.finish()
        assert sink.max_stack_depth == 256
        assert sink.ended


class TestAccesses:
    def test_load_store_emit_events(self, program, sink):
        g = program.add_global("g", 64)
        program.start()
        program.load(g, 0)
        program.store(g, 8, size=8)
        loads = [e for e in sink.events if not e.is_store]
        stores = [e for e in sink.events if e.is_store]
        assert len(loads) == 1 and len(stores) == 1
        assert stores[0].size == 8

    def test_out_of_bounds_access_rejected(self, program):
        g = program.add_global("g", 8)
        program.start()
        with pytest.raises(TraceError):
            program.load(g, 8)

    def test_access_spanning_end_rejected(self, program):
        g = program.add_global("g", 10)
        program.start()
        with pytest.raises(TraceError):
            program.load(g, 8, size=4)

    def test_negative_offset_rejected(self, program):
        g = program.add_global("g", 8)
        program.start()
        with pytest.raises(TraceError):
            program.store(g, -4)

    def test_validation_can_be_disabled(self, sink):
        program = Program(sink, validate=False)
        g = program.add_global("g", 8)
        program.start()
        program.load(g, 800)  # no exception


class TestStack:
    def test_local_access_requires_frame(self, program):
        program.start()
        with pytest.raises(TraceError):
            program.load_local(0)

    def test_frame_offsets_accumulate(self, program, sink):
        program.start()
        program.push_frame(64)
        program.push_frame(32)
        program.store_local(8)
        event = sink.events[-1]
        assert event.obj_id == 0
        assert event.offset == 64 + 8

    def test_pop_without_frame_rejected(self, program):
        program.start()
        with pytest.raises(TraceError):
            program.pop_frame()

    def test_frame_overflow_rejected(self, program):
        program.start()
        program.push_frame(16)
        with pytest.raises(TraceError):
            program.load_local(16)

    def test_function_context_manager_balances(self, program):
        program.start()
        with program.function(0x10, frame_bytes=32):
            program.store_local(0)
            assert program.return_addresses == (Program._mix(0x10),)
        assert program.return_addresses == ()

    def test_ret_with_empty_stack_rejected(self, program):
        program.start()
        with pytest.raises(TraceError):
            program.ret()


class TestHeap:
    def test_malloc_captures_return_addresses(self, program, sink):
        program.start()
        program.call(0x100)
        program.call(0x200)
        program.malloc(32)
        alloc = sink.events[-1]
        assert alloc.return_addresses == (
            Program._mix(0x200),
            Program._mix(0x100),
        )

    def test_site_mixing_is_deterministic_and_spread(self):
        assert Program._mix(0x10) == Program._mix(0x10)
        # Structured site ids must not XOR-cancel after mixing.
        degenerate = 0x22110 ^ 0x22100 ^ 0x22000
        mixed = (
            Program._mix(0x22110) ^ Program._mix(0x22100) ^ Program._mix(0x22000)
        )
        assert degenerate == 0x22010  # the raw values do cancel
        assert mixed != Program._mix(0x22010)

    def test_malloc_rejects_non_positive(self, program):
        program.start()
        with pytest.raises(TraceError):
            program.malloc(0)

    def test_free_marks_dead(self, program):
        program.start()
        ref = program.malloc(16)
        program.free(ref)
        with pytest.raises(TraceError):
            program.load(ref, 0)

    def test_double_free_rejected(self, program):
        program.start()
        ref = program.malloc(16)
        program.free(ref)
        with pytest.raises(TraceError):
            program.free(ref)

    def test_free_of_global_rejected(self, program):
        g = program.add_global("g", 8)
        program.start()
        with pytest.raises(TraceError):
            program.free(g)

    def test_realloc_is_malloc_plus_free(self, program, sink):
        program.start()
        ref = program.malloc(16)
        new_ref = program.realloc(ref, 64)
        assert not ref.alive and new_ref.alive
        assert new_ref.size == 64
        kinds = [type(e).__name__ for e in sink.events]
        assert kinds == ["Alloc", "Alloc", "Free"]
