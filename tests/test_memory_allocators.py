"""Unit + property tests for the first-fit and temporal-fit allocators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.allocators import (
    BinnedHeap,
    FirstFitAllocator,
    TemporalFitAllocator,
)
from repro.memory.freelist import HeapError


class TestFirstFit:
    def test_allocations_are_disjoint(self):
        heap = FirstFitAllocator(base=0)
        addrs = [heap.allocate(24) for _ in range(10)]
        spans = sorted((a, a + 24) for a in addrs)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_reuses_lowest_address_first(self):
        heap = FirstFitAllocator(base=0)
        a = heap.allocate(32)
        b = heap.allocate(32)
        heap.allocate(32)
        heap.free(a)
        heap.free(b)
        # First fit takes the lowest free address.
        assert heap.allocate(16) == a

    def test_splits_free_blocks(self):
        heap = FirstFitAllocator(base=0)
        a = heap.allocate(64)
        heap.allocate(8)
        heap.free(a)
        small = heap.allocate(8)
        assert small == a  # reuses the head of the freed block
        rest = heap.allocate(32)
        assert rest == a + 8

    def test_rejects_non_positive_sizes(self):
        heap = FirstFitAllocator(base=0)
        with pytest.raises(HeapError):
            heap.allocate(0)

    def test_double_free_rejected(self):
        heap = FirstFitAllocator(base=0)
        a = heap.allocate(16)
        heap.free(a)
        with pytest.raises(HeapError):
            heap.free(a)

    def test_alignment(self):
        heap = FirstFitAllocator(base=0)
        heap.allocate(5)
        b = heap.allocate(5)
        assert b % 8 == 0


class TestTemporalFit:
    def test_prefers_most_recently_touched_chunk(self):
        heap = TemporalFitAllocator(base=0, cache_size=1024)
        a = heap.allocate(32)
        heap.allocate(32)  # stays live, separating the two free chunks
        c = heap.allocate(32)
        heap.allocate(32)  # stays live, keeps c's chunk from the wilderness
        heap.free(a)   # freed earlier (older touch)
        heap.free(c)   # freed later (newer touch)
        # Temporal fit picks c's chunk (most recently touched), where
        # first-fit would have picked a.
        assert heap.allocate(16) == c

    def test_preferred_offset_honoured_from_fresh_memory(self):
        heap = TemporalFitAllocator(base=0, cache_size=1024)
        addr = heap.allocate(64, preferred_offset=256)
        assert addr % 1024 == 256

    def test_preferred_offset_honoured_within_free_chunk(self):
        heap = TemporalFitAllocator(base=0, cache_size=1024)
        big = heap.allocate(2048)
        heap.free(big)
        addr = heap.allocate(64, preferred_offset=512)
        assert addr % 1024 == 512
        assert big <= addr < big + 2048

    def test_preferred_offset_wraps_modulo_cache(self):
        heap = TemporalFitAllocator(base=0, cache_size=1024)
        addr = heap.allocate(16, preferred_offset=1024 + 96)
        assert addr % 1024 == 96

    def test_falls_back_when_no_chunk_fits(self):
        heap = TemporalFitAllocator(base=0, cache_size=1024)
        a = heap.allocate(16)
        heap.allocate(16)
        heap.free(a)
        # 16-byte hole cannot host 64 bytes; must extend the arena.
        addr = heap.allocate(64)
        assert addr >= a + 16

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(HeapError):
            TemporalFitAllocator(base=0, cache_size=0)


class TestBinnedHeap:
    def test_bins_are_spatially_separated(self):
        heap = BinnedHeap(cache_size=8192, base=0x1000000)
        a = heap.allocate(64, tag=0)
        b = heap.allocate(64, tag=1)
        default = heap.allocate(64, tag=None)
        assert abs(a - b) >= 0x100000
        assert abs(a - default) >= 0x100000

    def test_same_tag_allocates_nearby(self):
        heap = BinnedHeap(cache_size=8192)
        a = heap.allocate(64, tag=3)
        b = heap.allocate(64, tag=3)
        assert abs(b - a) < 4096

    def test_free_routes_to_owning_bin(self):
        heap = BinnedHeap(cache_size=8192)
        a = heap.allocate(64, tag=0)
        b = heap.allocate(64, tag=1)
        heap.free(a)
        heap.free(b)
        heap.check_invariants()

    def test_free_unknown_address_rejected(self):
        heap = BinnedHeap(cache_size=8192)
        with pytest.raises(HeapError):
            heap.free(0xDEAD)

    def test_preferred_offset_with_tag(self):
        heap = BinnedHeap(cache_size=8192)
        addr = heap.allocate(128, tag=2, preferred_offset=4096)
        assert addr % 8192 == 4096

    def test_bins_in_use(self):
        heap = BinnedHeap(cache_size=8192)
        heap.allocate(8, tag=None)
        heap.allocate(8, tag=5)
        assert set(heap.bins_in_use()) == {None, 5}


# -- property-based workouts --------------------------------------------------

ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 512)),
        st.tuples(st.just("free"), st.integers(0, 30)),
    ),
    min_size=1,
    max_size=60,
)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_first_fit_never_overlaps_and_keeps_invariants(op_list):
    heap = FirstFitAllocator(base=0)
    live: list[tuple[int, int]] = []
    for op, value in op_list:
        if op == "alloc":
            addr = heap.allocate(value)
            live.append((addr, value))
        elif live:
            addr, _size = live.pop(value % len(live))
            heap.free(addr)
        heap.arena.check_invariants()
    spans = sorted(live)
    for (a1, s1), (a2, _s2) in zip(spans, spans[1:]):
        assert a1 + s1 <= a2


@given(ops, st.integers(0, 8191))
@settings(max_examples=60, deadline=None)
def test_temporal_fit_respects_preferred_offsets(op_list, offset):
    heap = TemporalFitAllocator(base=0x2000000, cache_size=8192)
    live: list[int] = []
    for op, value in op_list:
        if op == "alloc":
            addr = heap.allocate(value, preferred_offset=offset)
            assert addr % 8192 == offset % 8192
            live.append(addr)
        elif live:
            heap.free(live.pop(value % len(live)))
        heap.arena.check_invariants()
