"""Unit and property tests for the XOR heap-naming scheme."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.naming.xor import DEFAULT_NAME_DEPTH, NameUniverse, xor_fold

addresses = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=0, max_size=12
).map(tuple)


class TestXorFold:
    def test_default_depth_is_four(self):
        assert DEFAULT_NAME_DEPTH == 4

    def test_folds_only_depth_addresses(self):
        assert xor_fold((1, 2, 4, 8, 16), depth=4) == 1 ^ 2 ^ 4 ^ 8

    def test_empty_stack_folds_to_zero(self):
        assert xor_fold(()) == 0

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            xor_fold((1,), depth=0)

    @given(addresses)
    def test_deterministic(self, addrs):
        assert xor_fold(addrs) == xor_fold(addrs)

    @given(addresses)
    def test_depth_one_is_call_site(self, addrs):
        if addrs:
            assert xor_fold(addrs, depth=1) == addrs[0]

    @given(addresses, st.integers(min_value=1, max_value=8))
    def test_fold_is_xor_of_prefix(self, addrs, depth):
        expected = 0
        for address in addrs[:depth]:
            expected ^= address
        assert xor_fold(addrs, depth) == expected

    def test_shallow_names_collide_where_deep_names_differ(self):
        # Same immediate call site, different callers: depth 1 collides,
        # depth 2 distinguishes (the Seidl & Zorn motivation for depth>1).
        site_a = (0x100, 0x200)
        site_b = (0x100, 0x300)
        assert xor_fold(site_a, 1) == xor_fold(site_b, 1)
        assert xor_fold(site_a, 2) != xor_fold(site_b, 2)


class TestNameUniverse:
    def test_sequential_lifetimes_do_not_collide(self):
        universe = NameUniverse()
        for obj_id in range(5):
            name = universe.observe_alloc(obj_id, 32, (0xA, 0xB))
            universe.observe_free(obj_id)
        assert not universe.records[name].collided
        assert universe.unique_names() == [name]

    def test_concurrent_lifetimes_collide(self):
        universe = NameUniverse()
        name = universe.observe_alloc(1, 32, (0xA,))
        universe.observe_alloc(2, 32, (0xA,))
        assert universe.records[name].collided
        assert universe.collided_names() == [name]

    def test_collision_is_sticky(self):
        universe = NameUniverse()
        name = universe.observe_alloc(1, 32, (0xA,))
        universe.observe_alloc(2, 32, (0xA,))
        universe.observe_free(1)
        universe.observe_free(2)
        universe.observe_alloc(3, 32, (0xA,))
        assert universe.records[name].collided

    def test_distinct_sites_get_distinct_records(self):
        universe = NameUniverse()
        name_a = universe.observe_alloc(1, 32, (0xA,))
        name_b = universe.observe_alloc(2, 32, (0xB,))
        assert name_a != name_b
        assert len(universe.records) == 2

    def test_size_statistics(self):
        universe = NameUniverse()
        universe.observe_alloc(1, 32, (0xA,))
        universe.observe_free(1)
        name = universe.observe_alloc(2, 96, (0xA,))
        record = universe.records[name]
        assert record.max_size == 96
        assert record.avg_size == pytest.approx(64.0)
        assert record.allocation_count == 2

    def test_free_of_unknown_object_is_ignored(self):
        universe = NameUniverse()
        universe.observe_free(123)  # must not raise

    def test_name_of(self):
        universe = NameUniverse()
        name = universe.observe_alloc(7, 8, (0x1, 0x2))
        assert universe.name_of(7) == name
        assert universe.name_of(99) is None

    def test_depth_respected(self):
        deep = NameUniverse(depth=2)
        name = deep.observe_alloc(1, 8, (0x1, 0x2, 0x4))
        assert name == 0x1 ^ 0x2
