"""Property tests of the incremental TRGIndex update API.

The contract: any sequence of :meth:`TRGIndex.apply_edge_deltas` calls
leaves the index bit-identical — same CSR arrays, same row content
order — to an index built from scratch over a reference edge dict that
received the same deltas.  The reference applies deltas with plain dict
ops (set while positive, delete at zero), so insertion-order semantics
are pinned too: the CSR row content order depends on edge insertion
order, and the incremental path must preserve it exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.cache_struct import TRGIndex

ENTITIES = [1, 2, 3, 5, 8]

pairs = st.tuples(st.sampled_from(ENTITIES), st.integers(0, 3))
edge_keys = st.tuples(pairs, pairs).map(
    lambda pair: pair if pair[0] <= pair[1] else (pair[1], pair[0])
)
edge_dicts = st.dictionaries(edge_keys, st.integers(1, 50), max_size=12)
delta_batches = st.lists(
    st.dictionaries(edge_keys, st.integers(-50, 50), max_size=8),
    max_size=6,
)


def apply_reference(edges: dict, deltas: dict) -> None:
    """The plain-dict semantics the incremental index must match."""
    for key, delta in deltas.items():
        new_weight = edges.get(key, 0) + delta
        if new_weight > 0:
            edges[key] = new_weight
        elif key in edges:
            del edges[key]


def assert_identical(index: TRGIndex, reference: TRGIndex) -> None:
    assert index.num_pairs == reference.num_pairs
    np.testing.assert_array_equal(index.indptr, reference.indptr)
    np.testing.assert_array_equal(index.nbr, reference.nbr)
    np.testing.assert_array_equal(index.wt, reference.wt)
    np.testing.assert_array_equal(index.pair_eid, reference.pair_eid)
    np.testing.assert_array_equal(index.pair_chunk, reference.pair_chunk)


@given(initial=edge_dicts, batches=delta_batches)
@settings(max_examples=120, deadline=None)
def test_incremental_matches_rebuild(initial, batches):
    index = TRGIndex.from_edges(dict(initial), ENTITIES)
    reference_edges = dict(initial)
    for deltas in batches:
        index.apply_edge_deltas(deltas)
        apply_reference(reference_edges, deltas)
        assert_identical(index, TRGIndex.from_edges(dict(reference_edges), ENTITIES))
    assert index.edges == reference_edges
    assert index.total_weight() == sum(reference_edges.values())


@given(initial=edge_dicts, scale=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_weight_only_updates_stay_in_place(initial, scale):
    """Deltas that touch only existing edges never trigger a rebuild."""
    index = TRGIndex.from_edges(dict(initial), ENTITIES)
    deltas = {key: scale for key in initial}
    index.apply_edge_deltas(deltas)
    assert index.rebuilds == 0
    assert index.inplace_updates == len(initial)
    expected = {key: weight + scale for key, weight in initial.items()}
    assert_identical(index, TRGIndex.from_edges(dict(expected), ENTITIES))


@given(initial=edge_dicts)
@settings(max_examples=60, deadline=None)
def test_structural_deltas_rebuild(initial):
    """Adding a brand-new edge goes through the rebuild path once."""
    index = TRGIndex.from_edges(dict(initial), ENTITIES)
    new_key = ((max(ENTITIES), 7), (max(ENTITIES), 9))
    assert new_key not in initial
    index.apply_edge_deltas({new_key: 3})
    assert index.rebuilds == 1
    expected = dict(initial)
    expected[new_key] = 3
    assert_identical(index, TRGIndex.from_edges(expected, ENTITIES))


def test_retire_to_zero_removes_edge():
    key = ((1, 0), (2, 0))
    index = TRGIndex.from_edges({key: 5, ((2, 0), (3, 1)): 2}, ENTITIES)
    index.apply_edge_deltas({key: -5})
    assert key not in index.edges
    assert index.rebuilds == 1
    assert_identical(index, TRGIndex.from_edges({((2, 0), (3, 1)): 2}, ENTITIES))


def test_empty_and_cancelling_deltas_are_noops():
    initial = {((1, 0), (2, 0)): 5}
    index = TRGIndex.from_edges(dict(initial), ENTITIES)
    index.apply_edge_deltas({})
    assert index.inplace_updates == 0 and index.rebuilds == 0
    index.apply_edge_deltas({((1, 0), (2, 0)): 0})
    assert index.rebuilds == 0
    assert index.edges == initial


def test_from_edges_matches_profile_construction():
    """from_edges over a profile's TRG equals TRGIndex(profile)."""
    from repro.cache.config import CacheConfig
    from repro.profiling.batch import profile_trace
    from repro.trace.buffer import record_trace
    from repro.workloads.drift import stationary

    trace = record_trace(stationary(iterations=600), "train")
    profile = profile_trace(trace, cache_config=CacheConfig())
    from_profile = TRGIndex(profile)
    rebuilt = TRGIndex.from_edges(profile.trg, list(profile.entities))
    assert_identical(from_profile, rebuilt)


def test_copy_on_write_leaves_profile_edges_untouched():
    """An index seeded from a profile must not mutate profile.trg."""
    initial = {((1, 0), (2, 0)): 5}

    class FakeProfile:
        trg = dict(initial)
        entities = {eid: None for eid in ENTITIES}

    index = TRGIndex(FakeProfile())
    index.apply_edge_deltas({((1, 0), (2, 0)): 3})
    assert FakeProfile.trg == initial
    assert index.edges == {((1, 0), (2, 0)): 8}
