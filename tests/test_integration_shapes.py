"""Integration tests: the paper's qualitative result shapes.

These run the full pipeline on a subset of the real workloads (kept fast)
and assert the *shapes* the paper reports — who wins, roughly by how much,
and where placement cannot help.  The full-suite numbers live in the
benchmarks; these tests guard the shapes in CI time.
"""

from __future__ import annotations

import pytest

from repro.experiments import cached_experiment, clear_cache
from repro.trace.events import Category


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestConflictProgramsWin:
    def test_m88ksim_large_reduction(self):
        result = cached_experiment("m88ksim", same_input=True)
        assert result.miss_reduction_pct > 40.0

    def test_m88ksim_cross_input_holds(self):
        result = cached_experiment("m88ksim", same_input=False)
        assert result.miss_reduction_pct > 40.0

    def test_m88ksim_global_misses_collapse(self):
        result = cached_experiment("m88ksim", same_input=True)
        original = result.original.cache.category_miss_rate(Category.GLOBAL)
        ccdp = result.ccdp.cache.category_miss_rate(Category.GLOBAL)
        assert ccdp < original * 0.7


class TestMgridCannotImprove:
    def test_reduction_is_negligible(self):
        result = cached_experiment("mgrid", same_input=True)
        assert abs(result.miss_reduction_pct) < 2.0

    def test_misses_are_intra_object(self):
        result = cached_experiment("mgrid", same_input=True)
        stats = result.original.cache
        global_share = stats.category_miss_rate(Category.GLOBAL)
        assert global_share / stats.miss_rate > 0.95


class TestHeapProgramGainsLeast:
    def test_deltablue_small_but_positive(self):
        result = cached_experiment("deltablue", same_input=True)
        assert 0.0 < result.miss_reduction_pct < 25.0

    def test_deltablue_heap_misses_barely_move(self):
        result = cached_experiment("deltablue", same_input=True)
        original = result.original.cache.category_miss_rate(Category.HEAP)
        ccdp = result.ccdp.cache.category_miss_rate(Category.HEAP)
        assert ccdp > original * 0.8  # heap stays the bottleneck

    def test_deltablue_stack_and_global_do_move(self):
        result = cached_experiment("deltablue", same_input=True)
        orig = result.original.cache
        new = result.ccdp.cache
        moved = orig.category_miss_rate(Category.STACK) + orig.category_miss_rate(
            Category.GLOBAL
        )
        remaining = new.category_miss_rate(Category.STACK) + new.category_miss_rate(
            Category.GLOBAL
        )
        assert remaining < moved * 0.5


class TestCrossInputDegradesGracefully:
    def test_go_cross_input_weaker_than_same_input(self):
        same = cached_experiment("go", same_input=True)
        cross = cached_experiment("go", same_input=False)
        assert cross.miss_reduction_pct < same.miss_reduction_pct
        assert cross.miss_reduction_pct > 0

    def test_ccdp_never_catastrophic_cross_input(self):
        for name in ("go", "mgrid", "m88ksim", "deltablue"):
            result = cached_experiment(name, same_input=False)
            assert result.ccdp.cache.miss_rate <= (
                result.original.cache.miss_rate * 1.1
            ), name


class TestPlacementMechanisms:
    def test_placement_moves_stack_away_from_globals(self):
        result = cached_experiment("m88ksim", same_input=True)
        original_stack = result.original.cache.category_miss_rate(Category.STACK)
        ccdp_stack = result.ccdp.cache.category_miss_rate(Category.STACK)
        assert ccdp_stack < original_stack * 0.5

    def test_constants_never_move(self):
        # Constants stay in the text segment: their miss attribution may
        # change (other objects moved) but their addresses are identical,
        # so the accesses per category are preserved.
        result = cached_experiment("go", same_input=True)
        assert result.original.cache.accesses_by_category[Category.CONST] == (
            result.ccdp.cache.accesses_by_category[Category.CONST]
        )

    def test_access_counts_identical_across_placements(self):
        result = cached_experiment("go", same_input=True)
        assert (
            result.original.cache.accesses == result.ccdp.cache.accesses
        ), "placement must never change the reference stream"
