"""Unit tests for compound nodes and the Phase 6 merge (Figure 2)."""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.core.cache_struct import CacheImage
from repro.core.compound import CompoundMerger, CompoundNode

CONFIG = CacheConfig(1024, 32, 1)  # 32 lines


def make_merger(
    stack_const_pairs=None,
    adjacency=None,
    sizes=None,
    active=None,
) -> CompoundMerger:
    image = CacheImage(CONFIG, 256)
    if stack_const_pairs:
        image.pairs.update(stack_const_pairs)
    return CompoundMerger(
        CONFIG,
        256,
        image,
        adjacency or {},
        sizes or {1: 256, 2: 256, 3: 256},
        active or {1: (0,), 2: (0,), 3: (0,)},
    )


class TestAnchor:
    def test_anchor_avoids_stack_const_conflict(self):
        # Stack occupies lines 0-7; entity 1 has a heavy edge to it.
        merger = make_merger(
            stack_const_pairs={(0, 0): tuple(range(8))},
            adjacency={(1, 0): [((0, 0), 50)], (0, 0): [((1, 0), 50)]},
        )
        node = CompoundNode(node_id=0, offsets={1: 0})
        cost = merger.anchor(node)
        assert cost == 0
        assert node.anchored
        line = (node.offsets[1] // 32) % 32
        assert line not in range(8)

    def test_anchor_without_edges_costs_nothing(self):
        merger = make_merger()
        node = CompoundNode(node_id=0, offsets={1: 0})
        assert merger.anchor(node) == 0
        assert merger.anchor_count == 1


class TestMerge:
    def test_merge_separates_conflicting_entities(self):
        adjacency = {
            (1, 0): [((2, 0), 100)],
            (2, 0): [((1, 0), 100)],
        }
        merger = make_merger(adjacency=adjacency)
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0})
        cost = merger.merge(node1, node2)
        assert cost == 0
        lines1 = set(range(node1.offsets[1] // 32, node1.offsets[1] // 32 + 8))
        lines2_start = (node1.offsets[2] // 32) % 32
        assert lines2_start % 32 not in {l % 32 for l in lines1}

    def test_merge_absorbs_entities(self):
        merger = make_merger()
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0, 3: 256})
        merger.merge(node1, node2)
        assert set(node1.offsets) == {1, 2, 3}
        assert not node2.offsets
        assert merger.merge_count == 1

    def test_merge_preserves_node2_relative_layout(self):
        merger = make_merger()
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0, 3: 256})
        merger.merge(node1, node2)
        assert node1.offsets[3] - node1.offsets[2] == 256

    def test_merge_anchors_node1_first(self):
        # node1 has a conflict with the fixed stack image; merging must
        # first move node1 away from it.
        merger = make_merger(
            stack_const_pairs={(0, 0): (0,)},
            adjacency={(1, 0): [((0, 0), 9)], (0, 0): [((1, 0), 9)]},
        )
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0})
        merger.merge(node1, node2)
        assert node1.anchored
        assert (node1.offsets[1] // 32) % 32 != 0

    def test_merge_cost_counts_unavoidable_conflicts(self):
        # Fixed image fills every line with an edge-heavy pair.
        full = {(9, c): tuple(range(32)) for c in range(1)}
        adjacency = {
            (2, 0): [((9, 0), 4)],
            (9, 0): [((2, 0), 4)],
        }
        merger = make_merger(stack_const_pairs=full, adjacency=adjacency)
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0})
        cost = merger.merge(node1, node2)
        assert cost == 4 * 8  # chunk of 256B covers 8 lines, all conflicting

    def test_initial_scan_point_past_node_extent(self):
        merger = make_merger(sizes={1: 128, 2: 256, 3: 256})
        node = CompoundNode(node_id=0, offsets={1: 64})
        assert merger._initial_scan_point(node) == 6  # (64+128)/32
