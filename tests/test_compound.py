"""Unit tests for compound nodes and the Phase 6 merge (Figure 2)."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.core.cache_struct import CacheImage, TRGIndex, chunk_line_span
from repro.core.compound import CompoundMerger, CompoundNode
from repro.core.placement_engine import (
    FIXED,
    ArrayCompoundMerger,
    ArrayPlacementEngine,
)
from repro.profiling.profile_data import Entity, Profile
from repro.trace.events import Category

CONFIG = CacheConfig(1024, 32, 1)  # 32 lines


def make_merger(
    stack_const_pairs=None,
    adjacency=None,
    sizes=None,
    active=None,
) -> CompoundMerger:
    image = CacheImage(CONFIG, 256)
    if stack_const_pairs:
        image.pairs.update(stack_const_pairs)
    return CompoundMerger(
        CONFIG,
        256,
        image,
        adjacency or {},
        sizes or {1: 256, 2: 256, 3: 256},
        active or {1: (0,), 2: (0,), 3: (0,)},
    )


class TestAnchor:
    def test_anchor_avoids_stack_const_conflict(self):
        # Stack occupies lines 0-7; entity 1 has a heavy edge to it.
        merger = make_merger(
            stack_const_pairs={(0, 0): tuple(range(8))},
            adjacency={(1, 0): [((0, 0), 50)], (0, 0): [((1, 0), 50)]},
        )
        node = CompoundNode(node_id=0, offsets={1: 0})
        cost = merger.anchor(node)
        assert cost == 0
        assert node.anchored
        line = (node.offsets[1] // 32) % 32
        assert line not in range(8)

    def test_anchor_without_edges_costs_nothing(self):
        merger = make_merger()
        node = CompoundNode(node_id=0, offsets={1: 0})
        assert merger.anchor(node) == 0
        assert merger.anchor_count == 1


class TestMerge:
    def test_merge_separates_conflicting_entities(self):
        adjacency = {
            (1, 0): [((2, 0), 100)],
            (2, 0): [((1, 0), 100)],
        }
        merger = make_merger(adjacency=adjacency)
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0})
        cost = merger.merge(node1, node2)
        assert cost == 0
        lines1 = set(range(node1.offsets[1] // 32, node1.offsets[1] // 32 + 8))
        lines2_start = (node1.offsets[2] // 32) % 32
        assert lines2_start % 32 not in {line % 32 for line in lines1}

    def test_merge_absorbs_entities(self):
        merger = make_merger()
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0, 3: 256})
        merger.merge(node1, node2)
        assert set(node1.offsets) == {1, 2, 3}
        assert not node2.offsets
        assert merger.merge_count == 1

    def test_merge_preserves_node2_relative_layout(self):
        merger = make_merger()
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0, 3: 256})
        merger.merge(node1, node2)
        assert node1.offsets[3] - node1.offsets[2] == 256

    def test_merge_anchors_node1_first(self):
        # node1 has a conflict with the fixed stack image; merging must
        # first move node1 away from it.
        merger = make_merger(
            stack_const_pairs={(0, 0): (0,)},
            adjacency={(1, 0): [((0, 0), 9)], (0, 0): [((1, 0), 9)]},
        )
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0})
        merger.merge(node1, node2)
        assert node1.anchored
        assert (node1.offsets[1] // 32) % 32 != 0

    def test_merge_cost_counts_unavoidable_conflicts(self):
        # Fixed image fills every line with an edge-heavy pair.
        full = {(9, c): tuple(range(32)) for c in range(1)}
        adjacency = {
            (2, 0): [((9, 0), 4)],
            (9, 0): [((2, 0), 4)],
        }
        merger = make_merger(stack_const_pairs=full, adjacency=adjacency)
        node1 = CompoundNode(node_id=0, offsets={1: 0})
        node2 = CompoundNode(node_id=1, offsets={2: 0})
        cost = merger.merge(node1, node2)
        assert cost == 4 * 8  # chunk of 256B covers 8 lines, all conflicting

    def test_initial_scan_point_past_node_extent(self):
        merger = make_merger(sizes={1: 128, 2: 256, 3: 256})
        node = CompoundNode(node_id=0, offsets={1: 64})
        assert merger._initial_scan_point(node) == 6  # (64+128)/32


def build_merger(kind, node_offsets, trg=None, sizes=None, fixed=None):
    """Build equivalent mergers under either placement engine.

    Args:
        kind: ``"scalar"`` (:class:`CompoundMerger`) or ``"array"``
            (:class:`ArrayCompoundMerger`).
        node_offsets: node id -> {entity id -> relative byte offset}.
        trg: ((eid, chunk), (eid, chunk)) -> weight edges.
        sizes: entity id -> placement size (node entities).
        fixed: entity id -> (cache_offset, size) spans owned by the
            ``Stack_Const`` image.
    """
    trg = trg or {}
    sizes = sizes or {1: 256, 2: 256, 3: 256}
    fixed = fixed or {}
    nodes = {
        nid: CompoundNode(node_id=nid, offsets=dict(offs))
        for nid, offs in node_offsets.items()
    }
    if kind == "array":
        profile = Profile(chunk_size=256)
        every = dict(sizes)
        every.update({eid: size for eid, (_off, size) in fixed.items()})
        for eid, size in sorted(every.items()):
            profile.entities[eid] = Entity(
                eid, Category.GLOBAL, f"g:{eid}", size=size
            )
        profile.trg = dict(trg)
        engine = ArrayPlacementEngine(TRGIndex(profile), CONFIG, 256)
        for eid, (offset, size) in fixed.items():
            engine.set_entity_span(eid, offset, size)
            engine.set_owner(engine.index.pair_ids(eid), FIXED)
        return ArrayCompoundMerger(engine, dict(sizes), nodes), nodes
    adjacency: dict = {}
    for (pair_a, pair_b), weight in trg.items():
        adjacency.setdefault(pair_a, []).append((pair_b, weight))
        if pair_a != pair_b:
            adjacency.setdefault(pair_b, []).append((pair_a, weight))
    image = CacheImage(CONFIG, 256)
    for eid, (offset, size) in fixed.items():
        for chunk in range(-(-size // 256)):
            image.pairs[(eid, chunk)] = chunk_line_span(
                offset, size, chunk, 256, CONFIG
            )
    merger = CompoundMerger(
        CONFIG,
        256,
        image,
        adjacency,
        dict(sizes),
        {eid: (0,) for eid in sizes},
    )
    return merger, nodes


@pytest.mark.parametrize("kind", ("scalar", "array"))
class TestFigure2TieBreaking:
    """Satellite: anchor/merge start-point and strict-improvement rules."""

    def test_zero_cost_anchor_stays_at_preferred_line_zero(self, kind):
        # No edges: every start costs 0.  Strict improvement ("<", never
        # "<=") keeps the preferred start, so the node must not move.
        merger, nodes = build_merger(kind, {0: {1: 64}})
        assert merger.anchor(nodes[0]) == 0
        assert nodes[0].offsets == {1: 64}
        assert nodes[0].anchored

    def test_zero_cost_merge_packs_densely(self, kind):
        # Figure 2's intelligent initial start point: with no conflicts,
        # node2 lands exactly past node1's extent, not back at line 0.
        merger, nodes = build_merger(kind, {0: {1: 0}, 1: {2: 0}})
        assert merger.merge(nodes[0], nodes[1]) == 0
        assert nodes[0].offsets == {1: 0, 2: 256}  # 8 lines x 32B
        assert not nodes[1].offsets

    def test_all_equal_costs_keep_preferred_start(self, kind):
        # A fixed entity covering all 32 lines conflicts with entity 2
        # at every one of the 32 candidate starts.  With nothing to
        # improve on, the scan keeps the dense-packing start.
        merger, nodes = build_merger(
            kind,
            {0: {1: 0}, 1: {2: 0}},
            trg={((2, 0), (9, chunk)): 4 for chunk in range(4)},
            fixed={9: (0, 1024)},
        )
        cost = merger.merge(nodes[0], nodes[1])
        assert cost == 4 * 8  # every moving line conflicts at weight 4
        assert nodes[0].offsets[2] == 256

    def test_first_zero_cost_start_in_scan_order_wins(self, kind):
        # node1 occupies lines 0-7, so the scan starts at line 8.  The
        # fixed image conflicts with entity 2 on lines 8-10; the first
        # zero-cost start in scan order is line 11 and ties later in the
        # scan (12, 13, ...) must not displace it.
        merger, nodes = build_merger(
            kind,
            {0: {1: 0}, 1: {2: 0}},
            trg={((2, 0), (9, 0)): 7},
            sizes={1: 256, 2: 32},
            fixed={9: (256, 96)},
        )
        assert merger.merge(nodes[0], nodes[1]) == 0
        assert nodes[0].offsets[2] == 11 * 32
