"""The O(1) recency-queue rewrite must keep TRG edges bit-identical.

``TRGBuilder`` replaced its list-based queue (O(n) ``list.index`` and
removal per reference) with an ordered-dict queue.  These tests pin the
observable behaviour to the original list implementation, reproduced
here verbatim as ``ListQueueTRGBuilder``: identical ``edges`` dicts on
random streams and on a real recorded workload trace, and identical
queue-accounting properties along the way.
"""

from __future__ import annotations

import random

import pytest

from repro.profiling import profiler as profiler_module
from repro.profiling.profiler import ProfilerSink
from repro.profiling.trg import TRGBuilder
from repro.workloads import make_workload
from repro.workloads.synthetic import heap_churn_only


class ListQueueTRGBuilder:
    """The seed's list-based queue, kept as the behavioural reference."""

    def __init__(self, queue_threshold, chunk_size=256):
        self.queue_threshold = queue_threshold
        self.chunk_size = chunk_size
        self.edges = {}
        self._queue = []
        self._entry_bytes = {}
        self._queued_bytes = 0

    def observe(self, eid, chunk, entry_bytes):
        key = (eid, chunk)
        queue = self._queue
        if queue and queue[0] == key:
            return
        edges = self.edges
        try:
            position = queue.index(key)
        except ValueError:
            position = -1
        if position >= 0:
            for other in queue[:position]:
                if other[0] == eid and other[1] == chunk:
                    continue
                edge = (key, other) if key <= other else (other, key)
                edges[edge] = edges.get(edge, 0) + 1
            del queue[position]
            self._queued_bytes -= self._entry_bytes[key]
        queue.insert(0, key)
        self._entry_bytes[key] = entry_bytes
        self._queued_bytes += entry_bytes
        while self._queued_bytes > self.queue_threshold and len(queue) > 1:
            evicted = queue.pop()
            self._queued_bytes -= self._entry_bytes.pop(evicted)

    @property
    def queue_length(self):
        return len(self._queue)

    @property
    def queued_bytes(self):
        return self._queued_bytes


def _random_stream(seed, events=4000, entities=24, chunks=6):
    rng = random.Random(seed)
    stream = []
    for _ in range(events):
        eid = rng.randrange(entities)
        chunk = rng.randrange(chunks)
        entry_bytes = rng.choice((16, 64, 256))
        stream.append((eid, chunk, entry_bytes))
    return stream


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("threshold", [256, 1024, 16384])
def test_edges_identical_on_random_streams(seed, threshold):
    fast = TRGBuilder(threshold)
    reference = ListQueueTRGBuilder(threshold)
    for eid, chunk, entry_bytes in _random_stream(seed):
        fast.observe(eid, chunk, entry_bytes)
        reference.observe(eid, chunk, entry_bytes)
        assert fast.queued_bytes == reference.queued_bytes
        assert fast.queue_length == reference.queue_length
    assert fast.edges == reference.edges


def test_entry_bytes_update_on_requeue():
    """Re-referencing a queued chunk re-accounts its byte size."""
    fast = TRGBuilder(1024)
    reference = ListQueueTRGBuilder(1024)
    stream = [(1, 0, 256), (2, 0, 256), (1, 0, 64), (3, 0, 256), (1, 0, 256)]
    for event in stream:
        fast.observe(*event)
        reference.observe(*event)
        assert fast.queued_bytes == reference.queued_bytes
    assert fast.edges == reference.edges


@pytest.mark.parametrize("workload_name", ["deltablue", "synthetic-heap"])
def test_edges_identical_on_recorded_trace(monkeypatch, workload_name):
    """End-to-end: profiling a real workload yields identical TRG edges."""
    if workload_name == "synthetic-heap":
        workload = heap_churn_only()
    else:
        workload = make_workload(workload_name)

    sink = ProfilerSink()
    workload.run(sink, workload.train_input)
    fast_profile = sink.profile

    monkeypatch.setattr(profiler_module, "TRGBuilder", ListQueueTRGBuilder)
    sink = ProfilerSink()
    workload.run(sink, workload.train_input)
    reference_profile = sink.profile

    assert fast_profile.trg == reference_profile.trg
    assert fast_profile.total_accesses == reference_profile.total_accesses
