"""Characterization tests: each workload's published-profile fingerprint.

The nine workloads are engineered to match their program's Table 1 /
Table 3 characteristics; these tests pin those fingerprints so future
tuning cannot silently drift a workload away from the paper's shape.
Bands are deliberately loose — they encode the *kind* of program each
one is, not exact numbers.
"""

from __future__ import annotations

from repro.runtime.driver import collect_stats
from repro.trace.events import Category
from repro.trace.stats import size_breakdown
from repro.workloads import make_workload


def stats_for(name: str):
    workload = make_workload(name)
    return collect_stats(workload, workload.train_input)


class TestDeltablue:
    def test_heap_dominates(self):
        stats = stats_for("deltablue")
        assert stats.pct_refs(Category.HEAP) > 50

    def test_small_object_swarm(self):
        row = size_breakdown(stats_for("deltablue"))
        assert row.objects_per_bucket[1] > 2000  # 8-128 B bucket
        assert row.pct_refs_per_bucket[1] > 80

    def test_allocation_sizes_tiny(self):
        stats = stats_for("deltablue")
        assert stats.avg_alloc_size < 64


class TestEspresso:
    def test_heap_and_global_split(self):
        stats = stats_for("espresso")
        assert stats.pct_refs(Category.HEAP) > 25
        assert stats.pct_refs(Category.GLOBAL) > 25

    def test_cube_sized_allocations(self):
        stats = stats_for("espresso")
        assert 32 <= stats.avg_alloc_size <= 80


class TestGcc:
    def test_all_categories_active(self):
        stats = stats_for("gcc")
        for category in Category:
            assert stats.pct_refs(category) > 5, category

    def test_obstack_bucket_dominates(self):
        row = size_breakdown(stats_for("gcc"))
        assert row.pct_refs_per_bucket[3] == max(row.pct_refs_per_bucket)


class TestGroff:
    def test_heaviest_allocator_of_the_suite(self):
        counts = {
            name: stats_for(name).alloc_count
            for name in ("deltablue", "espresso", "gcc", "groff")
        }
        assert counts["groff"] == max(counts.values())

    def test_store_heavy(self):
        stats = stats_for("groff")
        assert stats.pct_stores > stats.pct_loads


class TestCompress:
    def test_pure_global_program(self):
        stats = stats_for("compress")
        assert stats.alloc_count == 0
        assert stats.pct_refs(Category.GLOBAL) > 80

    def test_has_giant_tables(self):
        row = size_breakdown(stats_for("compress"))
        assert row.objects_per_bucket[-1] == 1   # htab, >32 KB
        assert row.objects_per_bucket[-2] == 1   # codetab, 8-32 KB


class TestGo:
    def test_global_dominated_no_heap(self):
        stats = stats_for("go")
        assert stats.alloc_count == 0
        assert stats.pct_refs(Category.GLOBAL) > 85

    def test_midsize_pattern_tables(self):
        row = size_breakdown(stats_for("go"))
        assert row.objects_per_bucket[3] >= 5  # 1-4 KB pattern tables


class TestM88ksim:
    def test_hot_midsize_structures(self):
        row = size_breakdown(stats_for("m88ksim"))
        # The 128 B-1 KB bucket (regfile, pipeline, scoreboard...) is hot.
        assert row.pct_refs_per_bucket[2] > 30

    def test_scalar_cluster_present(self):
        stats = stats_for("m88ksim")
        tiny = sum(1 for size in stats.object_sizes.values() if size == 8)
        assert tiny >= 8


class TestFpppp:
    def test_four_hot_midsize_arrays(self):
        row = size_breakdown(stats_for("fpppp"))
        bucket = row.pct_refs_per_bucket[3]  # 1-4 KB
        assert bucket > 40

    def test_heavy_stack_traffic(self):
        stats = stats_for("fpppp")
        assert stats.pct_refs(Category.STACK) > 15


class TestMgrid:
    def test_single_giant_object_dominates(self):
        row = size_breakdown(stats_for("mgrid"))
        assert row.objects_per_bucket[-1] == 1
        assert row.pct_refs_per_bucket[-1] > 90

    def test_tiny_coefficients_barely_referenced(self):
        row = size_breakdown(stats_for("mgrid"))
        assert row.objects_per_bucket[0] > 1000
        assert row.pct_refs_per_bucket[0] < 5

    def test_no_stack_frames_of_consequence(self):
        stats = stats_for("mgrid")
        assert stats.pct_refs(Category.STACK) < 1
