"""Tests for the parametric workload construction kit."""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.runtime.driver import collect_stats, run_experiment
from repro.trace.events import Category
from repro.workloads.synthetic import (
    SyntheticSpec,
    SyntheticWorkload,
    aliased_hot_set,
    heap_churn_only,
)


class TestSpecKnobs:
    def test_default_runs_clean(self):
        workload = SyntheticWorkload()
        stats = collect_stats(workload, "train")
        assert stats.memory_refs > 1000

    def test_heap_disabled_by_default_spec(self):
        stats = collect_stats(SyntheticWorkload(), "train")
        assert stats.alloc_count == 0

    def test_heap_churn_allocates_and_frees(self):
        workload = heap_churn_only(heap_churn=3, heap_persistent=5)
        stats = collect_stats(workload, "train")
        assert stats.alloc_count > 100
        assert stats.free_count == stats.alloc_count

    def test_small_cluster_declares_scalars(self):
        spec = SyntheticSpec(small_cluster=6, iterations=200)
        stats = collect_stats(SyntheticWorkload(spec), "train")
        assert sum(
            1 for size in stats.object_sizes.values() if size == 8
        ) >= 6

    def test_no_constants_when_disabled(self):
        spec = SyntheticSpec(constant_bytes=0, iterations=100)
        stats = collect_stats(SyntheticWorkload(spec), "train")
        assert stats.refs_by_category[Category.CONST] == 0

    def test_scale_grows_trace(self):
        workload = SyntheticWorkload()
        train = collect_stats(workload, "train")
        test = collect_stats(SyntheticWorkload(), "test")
        assert test.memory_refs > train.memory_refs


class TestAliasedHotSet:
    def test_natural_layout_aliases(self):
        """Consecutive hot globals land one cache-size apart."""
        cache = CacheConfig()
        workload = aliased_hot_set(
            hot_globals=3, hot_size=1920, cache_size=cache.size, iterations=400
        )
        result = run_experiment(workload, cache_config=cache)
        # Aliasing makes natural placement terrible and CCDP fixes it.
        assert result.original.cache.miss_rate > 30
        assert result.miss_reduction_pct > 50

    def test_fewer_hot_globals_than_cache_fully_fixable(self):
        workload = aliased_hot_set(hot_globals=2, hot_size=1024, iterations=400)
        result = run_experiment(workload)
        assert result.ccdp.cache.miss_rate < result.original.cache.miss_rate / 2

    def test_hot_set_larger_than_cache_not_fully_fixable(self):
        """With 6x1920 B of lockstep-hot data in an 8 KB cache, any
        placement must overlap something: CCDP improves far less."""
        small = run_experiment(
            aliased_hot_set(hot_globals=2, hot_size=1920, iterations=400)
        )
        big = run_experiment(
            aliased_hot_set(hot_globals=6, hot_size=1920, iterations=400)
        )
        assert big.miss_reduction_pct < small.miss_reduction_pct


class TestHeapChurnWorkload:
    def test_ccdp_never_catastrophic(self):
        result = run_experiment(heap_churn_only(iterations=800))
        assert result.ccdp.cache.miss_rate <= (
            result.original.cache.miss_rate * 1.15
        )

    def test_churn_names_not_collided_but_persistent_are(self):
        from repro.runtime.driver import profile_workload

        workload = heap_churn_only(heap_churn=1, heap_persistent=4,
                                   iterations=400)
        profile = profile_workload(workload, "train")
        heap_entities = profile.entities_of(Category.HEAP)
        # The persistent site allocates four concurrently live objects
        # (collided); singleton churn allocations are freed before the
        # next one exists (clean, placeable name).
        collided = sorted(e.collided for e in heap_entities)
        assert collided == [False, True]
        churn_entity = max(heap_entities, key=lambda e: e.alloc_count)
        assert not churn_entity.collided
        assert churn_entity.alloc_count > 20
