"""End-to-end contracts of the streaming adaptive engine.

The two acceptance anchors:

* **stationary** — a single-phase workload must trigger zero
  re-placements, keep the index on its in-place fast path, and measure
  bit-identically to the static pipeline under the same
  train-on-first-window placement;
* **phase-change** — a mid-run hot-set jump must trigger at least one
  re-placement and beat the static placement's miss count.
"""

from __future__ import annotations

import pytest

from repro.adaptive import WindowAggregator, run_adaptive, window_profile
from repro.adaptive.bench import render_adaptive_bench, run_adaptive_bench
from repro.cache.config import CacheConfig
from repro.core.algorithm import CCDPPlacer
from repro.runtime.driver import measure_trace
from repro.runtime.resolvers import CCDPResolver
from repro.trace.buffer import record_trace
from repro.workloads.drift import drift_workload, phase_change, stationary

CONFIG = CacheConfig()
WINDOW = 1024


@pytest.fixture(scope="module")
def stationary_trace():
    return record_trace(stationary(iterations=2500), "test")


@pytest.fixture(scope="module")
def phase_change_trace():
    return record_trace(phase_change(iterations=2500), "test")


def test_never_policy_reproduces_static_pipeline(stationary_trace):
    """policy="never" is the static pipeline: same placement, same stats."""
    trace = stationary_trace
    result = run_adaptive(
        trace, CONFIG, place_heap=False, policy="never", window_events=WINDOW
    )
    static = CCDPPlacer(
        window_profile(trace, WINDOW, CONFIG), CONFIG, place_heap=False
    ).place()
    assert result.replacements == 0
    assert result.initial_placement == static
    assert result.final_placement == static
    measured = measure_trace(trace, CCDPResolver(static), CONFIG)
    assert result.stats.accesses == measured.cache.accesses
    assert result.stats.misses == measured.cache.misses


def test_stationary_drift_never_triggers(stationary_trace):
    """A correct detector stays quiet on a stationary stream."""
    trace = stationary_trace
    drift = run_adaptive(trace, CONFIG, place_heap=False, window_events=WINDOW)
    never = run_adaptive(
        trace, CONFIG, place_heap=False, policy="never", window_events=WINDOW
    )
    assert drift.replacements == 0
    assert drift.final_placement == drift.initial_placement
    assert drift.stats.accesses == never.stats.accesses
    assert drift.stats.misses == never.stats.misses
    # The sliding window keeps hitting the same edges, so the index
    # updates in place instead of rebuilding.
    assert drift.index_inplace_updates > 0


def test_phase_change_triggers_and_wins(phase_change_trace):
    """The hot-set jump is detected and re-placement pays off."""
    trace = phase_change_trace
    drift = run_adaptive(trace, CONFIG, place_heap=False, window_events=WINDOW)
    static = run_adaptive(
        trace, CONFIG, place_heap=False, policy="never", window_events=WINDOW
    )
    assert drift.replacements >= 1
    assert any(record.replaced for record in drift.windows)
    assert drift.stats.misses < static.stats.misses
    assert drift.final_placement != drift.initial_placement


def test_oracle_policy_replaces_every_check(phase_change_trace):
    result = run_adaptive(
        phase_change_trace,
        CONFIG,
        place_heap=False,
        policy="always",
        window_events=WINDOW,
    )
    checks = sum(1 for record in result.windows if record.drift_score is not None)
    assert result.replacements == checks


def test_window_records_cover_trace(phase_change_trace):
    trace = phase_change_trace
    result = run_adaptive(
        trace, CONFIG, place_heap=False, policy="never", window_events=WINDOW
    )
    assert result.windows[0].start == 0
    assert result.windows[-1].end == trace.events
    assert all(
        record.end - record.start <= WINDOW for record in result.windows
    )
    assert sum(record.accesses for record in result.windows) == (
        result.stats.accesses
    )
    assert sum(record.misses for record in result.windows) == result.stats.misses


def test_bad_policy_rejected(stationary_trace):
    with pytest.raises(ValueError):
        run_adaptive(stationary_trace, CONFIG, policy="sometimes")


def test_window_profile_matches_full_profile_at_end(stationary_trace):
    """Cutting at the trace end reproduces the batched full profile."""
    from repro.profiling.batch import profile_trace

    trace = stationary_trace
    full = profile_trace(trace, cache_config=CONFIG)
    cut = window_profile(trace, trace.events, CONFIG)
    assert cut.trg == full.trg
    assert cut.total_accesses == full.total_accesses
    assert set(cut.entities) == set(full.entities)


def test_window_aggregator_retires_old_windows():
    key_a, key_b = ((1, 0), (2, 0)), ((2, 0), (3, 0))
    aggregator = WindowAggregator(history=2)
    assert aggregator.push({key_a: 4}) == {key_a: 4}
    assert aggregator.push({key_a: 4, key_b: 1}) == {key_a: 4, key_b: 1}
    # Third push retires the first window's weight.
    assert aggregator.push({key_b: 2}) == {key_a: -4, key_b: 2}
    # A recurring window cancels against the one it retires: no deltas,
    # which is what keeps the index fast path idle on stationary streams.
    assert aggregator.push({key_a: 4, key_b: 1}) == {}
    assert aggregator.depth == 2


def test_drift_workload_names_not_registered():
    """Drift scenarios stay out of the paper-table registry."""
    from repro.workloads import workload_names
    from repro.workloads.drift import drift_workload_names

    assert not set(drift_workload_names()) & set(workload_names())
    with pytest.raises(KeyError):
        drift_workload("nope")


def test_adaptive_bench_quick(tmp_path):
    output = tmp_path / "BENCH_adaptive.json"
    result = run_adaptive_bench(
        quick=True,
        output=str(output),
        window_sizes=(1024,),
        cadences=(1,),
    )
    assert output.exists()
    assert result["adaptive_beats_static"]
    assert result["stationary_zero_replacements"]
    assert result["stationary_identical"]
    text = render_adaptive_bench(result)
    assert "beats best static" in text
    assert "0 replacements" in text


def test_serve_adaptive_mode(tmp_path):
    from repro.serve.jobs import BadRequest, validate_request, _run_placement
    from repro.store import ArtifactStore

    store = ArtifactStore(tmp_path / "store")
    record = validate_request(
        {
            "kind": "placement",
            "workload": "compress",
            "mode": "adaptive",
            "window_events": 4096,
            "cadence": 2,
        },
        store,
    )
    assert record.params["mode"] == "adaptive"
    static = validate_request(
        {"kind": "placement", "workload": "compress"}, store
    )
    assert static.params["mode"] == "static"
    assert record.identity != static.identity
    with pytest.raises(BadRequest):
        validate_request(
            {"kind": "placement", "workload": "compress", "mode": "bogus"},
            store,
        )
    with pytest.raises(BadRequest):
        validate_request(
            {
                "kind": "placement",
                "workload": "compress",
                "mode": "adaptive",
                "window_events": 0,
            },
            store,
        )
    result = _run_placement(record, store)
    assert result["mode"] == "adaptive"
    assert result["windows"] > 0
    assert "placement" in result


def test_store_window_artifact(tmp_path):
    from repro.adaptive.engine import KIND_ADAPT_WINDOWS
    from repro.store import ArtifactStore, use_store

    trace = record_trace(stationary(iterations=800), "train")
    store = ArtifactStore(tmp_path / "store")
    with use_store(store):
        result = run_adaptive(
            trace, CONFIG, place_heap=False, window_events=WINDOW
        )
    entries = list((store.objects_dir / KIND_ADAPT_WINDOWS).rglob("*.json"))
    assert len(entries) == 1
    artifact = result.window_artifact()
    assert artifact["replacements"] == result.replacements
    assert len(artifact["windows"]) == len(result.windows)
