"""The allocation-mix and layout-sensitivity workload families.

Pins: family members resolve through :func:`make_workload` without
entering the paper-table registry, their traces are deterministic, the
allocator size mix is small-object dominated (Heap-vs-Stack shape), and
layout-stress reproduces its engineered aliasing structure.
"""

from __future__ import annotations

import pytest

from repro.runtime.driver import collect_stats
from repro.trace.sinks import TraceSink
from repro.workloads import (
    family_workload_names,
    make_workload,
    register_family,
    workload_names,
)

FAMILY_NAMES = (
    "alloc-mix",
    "alloc-churn",
    "pqueue-churn",
    "layout-stress",
)


class TestFamilyRegistry:
    def test_paper_tables_stay_pinned_to_the_nine(self):
        assert len(workload_names()) == 9
        assert not set(FAMILY_NAMES) & set(workload_names())

    def test_families_resolve_through_make_workload(self):
        for name in FAMILY_NAMES:
            workload = make_workload(name)
            assert workload.name == name
            assert workload.train_input != workload.test_input

    def test_families_listed(self):
        for name in FAMILY_NAMES:
            assert name in family_workload_names()

    def test_unknown_name_reports_families_too(self):
        with pytest.raises(KeyError, match="layout-stress"):
            make_workload("doom")

    def test_family_cannot_shadow_a_benchmark(self):
        with pytest.raises(ValueError, match="shadows a benchmark"):
            register_family({"espresso": lambda: None})


class _Digest(TraceSink):
    def __init__(self):
        self.value = 0
        self.count = 0

    def on_access(self, obj_id, offset, size, is_store, category):
        self.count += 1
        self.value = (
            self.value * 1000003
            + hash((obj_id, offset, size, is_store, int(category)))
        ) & 0xFFFFFFFFFFFF


@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestEachFamilyWorkload:
    def test_runs_clean_with_validation(self, name):
        workload = make_workload(name)
        stats = collect_stats(workload, workload.train_input)
        assert stats.memory_refs > 5000

    def test_deterministic_trace(self, name):
        workload = make_workload(name)
        first, second = _Digest(), _Digest()
        workload.run(first, workload.train_input)
        make_workload(name).run(second, workload.train_input)
        assert first.count == second.count
        assert first.value == second.value

    def test_inputs_differ(self, name):
        workload = make_workload(name)
        train, test = _Digest(), _Digest()
        workload.run(train, workload.train_input)
        workload.run(test, workload.test_input)
        assert (train.count, train.value) != (test.count, test.value)


class TestAllocMixShape:
    def test_size_mix_is_small_object_dominated(self):
        stats = collect_stats(make_workload("alloc-mix"), "train")
        assert stats.alloc_count > 1000
        # Heap-vs-Stack shape: mean allocation well under a KB even
        # with the large-buffer tail in the histogram.
        assert stats.avg_alloc_size < 256

    def test_churn_arm_frees_most_blocks(self):
        stats = collect_stats(make_workload("alloc-churn"), "train")
        assert stats.free_count > 0.8 * stats.alloc_count


class TestLayoutStress:
    def test_hot_globals_are_spaced_one_period_apart(self):
        from repro.runtime.driver import build_placement
        from repro.workloads.pqueue import LayoutStressSpec

        workload = make_workload("layout-stress")
        spec = LayoutStressSpec()
        profile, _placement = build_placement(workload)
        sizes = {
            entity.key: entity.size for entity in profile.entities.values()
        }
        hot = [key for key in sizes if "hot_" in key]
        pads = [key for key in sizes if "pad_" in key]
        assert len(hot) == spec.hot_blocks
        assert len(pads) == spec.hot_blocks
        for key in hot:
            assert sizes[key] == spec.hot_bytes
        for key in pads:
            assert sizes[key] == spec.period - spec.hot_bytes
