"""Tests for profile summary statistics."""

from __future__ import annotations

from repro.analysis.trg_stats import render_summary, summarize_profile
from repro.profiling.profile_data import Entity, Profile, STACK_ENTITY_ID
from repro.runtime.driver import profile_workload
from repro.trace.events import Category


class TestSummarizeProfile:
    def test_empty_profile(self):
        profile = Profile()
        profile.entities[STACK_ENTITY_ID] = Entity(
            STACK_ENTITY_ID, Category.STACK, "stack"
        )
        summary = summarize_profile(profile)
        assert summary.entities == 1
        assert summary.trg_edges == 0
        assert summary.max_edge_weight == 0
        assert summary.popular_at_99 == 0

    def test_counts_by_category(self, toy_workload, small_cache):
        profile = profile_workload(toy_workload, "train", small_cache)
        summary = summarize_profile(profile)
        assert summary.entities_by_category[Category.STACK] == 1
        assert summary.entities_by_category[Category.GLOBAL] == 9
        assert summary.entities_by_category[Category.CONST] == 1
        assert summary.entities_by_category[Category.HEAP] >= 1
        assert summary.entities == sum(
            summary.entities_by_category.values()
        )

    def test_weight_accounting(self, toy_workload, small_cache):
        profile = profile_workload(toy_workload, "train", small_cache)
        summary = summarize_profile(profile)
        assert summary.trg_edges == len(profile.trg)
        assert summary.trg_total_weight == sum(profile.trg.values())
        assert summary.max_edge_weight == max(profile.trg.values())
        assert 0 < summary.weight_share_top_decile <= 100

    def test_popular_matches_placer_phase0(self, toy_workload, small_cache):
        from repro.core.algorithm import CCDPPlacer

        profile = profile_workload(toy_workload, "train", small_cache)
        summary = summarize_profile(profile)
        placer = CCDPPlacer(profile, small_cache)
        popular = placer._split_popular_unpopular(profile.popularity())
        assert summary.popular_at_99 == len(popular)

    def test_render(self, toy_workload, small_cache):
        profile = profile_workload(toy_workload, "train", small_cache)
        text = render_summary(summarize_profile(profile), title="toy")
        assert "toy" in text
        assert "TRG edges" in text
