"""Unit tests for the profiler sink (Name profile + entities + TRG)."""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.profiling.profile_data import STACK_ENTITY_ID
from repro.profiling.profiler import ProfilerSink
from repro.trace.events import Category
from repro.vm.program import Program


def profile_of(body) -> "Profile":
    sink = ProfilerSink(cache_config=CacheConfig(1024, 32, 1))
    program = Program(sink)
    body(program)
    program.finish()
    return sink.profile


class TestEntities:
    def test_stack_entity_exists(self):
        profile = profile_of(lambda p: p.start())
        stack = profile.entities[STACK_ENTITY_ID]
        assert stack.category is Category.STACK
        assert stack.key == "stack"

    def test_global_and_const_keys(self):
        def body(p):
            p.add_global("counts", 64)
            p.add_constant("table", 32)
            p.start()

        profile = profile_of(body)
        assert profile.entity_by_key("g:counts") is not None
        assert profile.entity_by_key("c:table") is not None

    def test_heap_entities_merge_by_xor_name(self):
        def body(p):
            p.start()
            p.call(0xAA)
            first = p.malloc(32)
            p.free(first)
            second = p.malloc(48)
            p.free(second)
            p.ret()

        profile = profile_of(body)
        heap_entities = profile.entities_of(Category.HEAP)
        assert len(heap_entities) == 1
        entity = heap_entities[0]
        assert entity.alloc_count == 2
        assert entity.size == 48  # max of the two
        assert not entity.collided

    def test_concurrent_same_name_marks_collision(self):
        def body(p):
            p.start()
            p.call(0xAA)
            first = p.malloc(32)
            second = p.malloc(32)
            p.free(first)
            p.free(second)
            p.ret()

        profile = profile_of(body)
        entity = profile.entities_of(Category.HEAP)[0]
        assert entity.collided

    def test_distinct_sites_make_distinct_entities(self):
        def body(p):
            p.start()
            p.call(0xAA)
            a = p.malloc(8)
            p.ret()
            p.call(0xBB)
            b = p.malloc(8)
            p.ret()
            p.free(a)
            p.free(b)

        profile = profile_of(body)
        assert len(profile.entities_of(Category.HEAP)) == 2


class TestNameProfile:
    def test_reference_counts(self):
        def body(p):
            g = p.add_global("g", 64)
            p.start()
            for _ in range(5):
                p.load(g, 0)

        profile = profile_of(body)
        assert profile.entity_by_key("g:g").refs == 5
        assert profile.total_accesses == 5

    def test_lifetime_spans_accesses(self):
        def body(p):
            g = p.add_global("g", 64)
            h = p.add_global("h", 64)
            p.start()
            p.load(g, 0)       # t=1
            p.load(h, 0)       # t=2
            p.load(h, 0)       # t=3
            p.load(g, 0)       # t=4

        profile = profile_of(body)
        assert profile.entity_by_key("g:g").lifetime == 3
        assert profile.entity_by_key("g:h").lifetime == 1

    def test_stack_size_tracks_max_depth(self):
        def body(p):
            p.start()
            p.push_frame(128)
            p.push_frame(64)
            p.store_local(0)
            p.pop_frame()
            p.pop_frame()

        profile = profile_of(body)
        assert profile.entities[STACK_ENTITY_ID].size >= 192

    def test_alloc_adjacency_recorded(self):
        def body(p):
            p.start()
            for _ in range(3):
                p.call(0xAA)
                a = p.malloc(8)
                p.ret()
                p.call(0xBB)
                b = p.malloc(8)
                p.ret()
                p.free(a)
                p.free(b)

        profile = profile_of(body)
        assert len(profile.alloc_adjacency) == 1
        ((pair, count),) = profile.alloc_adjacency.items()
        assert count == 5  # A B A B A B -> 5 adjacent cross pairs


class TestPopularity:
    def test_popularity_sums_incident_edges(self):
        def body(p):
            a = p.add_global("a", 32)
            b = p.add_global("b", 32)
            p.start()
            for _ in range(10):
                p.load(a, 0)
                p.load(b, 0)

        profile = profile_of(body)
        popularity = profile.popularity()
        eid_a = profile.entity_by_key("g:a").eid
        eid_b = profile.entity_by_key("g:b").eid
        assert popularity[eid_a] == popularity[eid_b] > 0

    def test_untouched_entity_has_zero_popularity(self):
        def body(p):
            p.add_global("cold", 32)
            p.start()

        profile = profile_of(body)
        eid = profile.entity_by_key("g:cold").eid
        assert profile.popularity()[eid] == 0


class TestChunking:
    def test_accesses_map_to_chunks(self):
        def body(p):
            g = p.add_global("g", 1024)
            h = p.add_global("h", 8)
            p.start()
            for _ in range(4):
                p.load(g, 0)       # chunk 0
                p.load(g, 512)     # chunk 2
                p.load(h, 0)

        profile = profile_of(body)
        eid_g = profile.entity_by_key("g:g").eid
        chunks = {
            pair[1]
            for edge in profile.trg
            for pair in edge
            if pair[0] == eid_g
        }
        assert chunks == {0, 2}

    def test_queue_threshold_defaults_to_twice_cache(self):
        sink = ProfilerSink(cache_config=CacheConfig(1024, 32, 1))
        assert sink.profile.queue_threshold == 2048

    def test_name_depth_recorded(self):
        sink = ProfilerSink(name_depth=3)
        assert sink.profile.name_depth == 3
