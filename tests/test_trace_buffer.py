"""Unit tests for the structure-of-arrays trace buffers.

:class:`TraceBuffer` and :class:`TraceRecorder` are the substrate of the
batched engine; these tests pin their column semantics, chunked drain,
lifetime-op bookkeeping, and the exactness of :meth:`TraceRecorder.replay`
and :meth:`TraceRecorder.stats` against the live-run equivalents.
"""

from __future__ import annotations

import numpy as np

from repro.trace.buffer import (
    DEFAULT_CHUNK_EVENTS,
    TraceBuffer,
    record_trace,
)
from repro.trace.events import Category
from repro.trace.sinks import TraceSink
from repro.trace.stats import StatsSink
from repro.workloads import make_workload


class TestTraceBuffer:
    def test_append_and_columns(self):
        buffer = TraceBuffer()
        buffer.append(0x1000, 4, 7, int(Category.GLOBAL), True)
        buffer.append(0x2000, 8, 9, int(Category.HEAP), False)
        addr, size, obj, cat, store = buffer.columns()
        assert addr.tolist() == [0x1000, 0x2000]
        assert size.tolist() == [4, 8]
        assert obj.tolist() == [7, 9]
        assert cat.tolist() == [int(Category.GLOBAL), int(Category.HEAP)]
        assert store.tolist() == [1, 0]
        assert len(buffer) == 2

    def test_empty_columns_have_stable_dtypes(self):
        addr, size, obj, cat, store = TraceBuffer().columns()
        assert addr.dtype == np.int64
        assert size.dtype == np.int32
        assert obj.dtype == np.int32
        assert cat.dtype == np.int8
        assert store.dtype == np.int8
        assert len(addr) == 0

    def test_drain_chunks_and_clears(self):
        buffer = TraceBuffer()
        total = 10
        for index in range(total):
            buffer.append(index * 32, 4, index, 0, False)
        chunks = list(buffer.drain(chunk_events=4))
        assert [len(chunk[0]) for chunk in chunks] == [4, 4, 2]
        recovered = np.concatenate([chunk[0] for chunk in chunks])
        assert recovered.tolist() == [index * 32 for index in range(total)]
        assert len(buffer) == 0

    def test_drained_chunks_survive_refill(self):
        buffer = TraceBuffer()
        buffer.append(1, 4, 0, 0, False)
        (chunk,) = buffer.drain()
        buffer.append(2, 4, 0, 0, False)
        # The drained chunk is a copy; refilling must not disturb it.
        assert chunk[0].tolist() == [1]


class _EventLog(TraceSink):
    """Records the full sink-call sequence for replay comparison."""

    def __init__(self):
        self.calls = []

    def on_object(self, info):
        self.calls.append(("object", info.obj_id))

    def on_access(self, obj_id, offset, size, is_store, category):
        self.calls.append(("access", obj_id, offset, size, is_store, category))

    def on_alloc(self, info, return_addresses):
        self.calls.append(("alloc", info.obj_id, tuple(return_addresses)))

    def on_free(self, obj_id):
        self.calls.append(("free", obj_id))

    def on_compute(self, instructions):
        self.calls.append(("compute", instructions))

    def on_stack_depth(self, depth):
        self.calls.append(("stack", depth))

    def on_end(self):
        self.calls.append(("end",))


class TestTraceRecorder:
    def test_replay_reproduces_live_event_sequence(self):
        workload = make_workload("deltablue")
        trace = record_trace(workload, workload.train_input)

        live = _EventLog()
        make_workload("deltablue").run(live, workload.train_input)
        replayed = _EventLog()
        trace.replay(replayed)

        # Stack-depth events are recorded only at new maxima; the replay
        # is otherwise event-for-event identical, in order.
        live_calls = [c for c in live.calls if c[0] != "stack"]
        replay_calls = [c for c in replayed.calls if c[0] != "stack"]
        assert replay_calls == live_calls

    def test_stats_equal_stats_sink(self):
        workload = make_workload("espresso")
        trace = record_trace(workload, workload.train_input)
        sink = StatsSink()
        make_workload("espresso").run(sink, workload.train_input)
        assert trace.stats() == sink.stats

    def test_lifetime_ops_exclude_compute(self):
        workload = make_workload("deltablue")
        trace = record_trace(workload, workload.train_input)
        kinds = {kind for _pos, kind, _payload in trace.lifetime_ops}
        from repro.trace.buffer import _OP_COMPUTE

        assert _OP_COMPUTE not in kinds
        assert len(trace.lifetime_ops) < len(trace.ops)
        assert trace.compute_instructions > 0

    def test_columns_are_flat_and_sized(self):
        workload = make_workload("go")
        trace = record_trace(workload, workload.train_input)
        obj, offset, size, cat, store = trace.columns()
        assert len(obj) == trace.events == len(trace)
        assert offset.dtype == np.int64
        assert trace.nbytes >= trace.events * (4 + 8 + 4 + 1 + 1)

    def test_iter_segments_covers_stream(self):
        workload = make_workload("deltablue")
        trace = record_trace(workload, workload.train_input)
        position = 0
        op_count = 0
        for start, end, ops in trace.iter_segments():
            assert start == position
            assert end >= start
            position = end
            op_count += len(ops)
        assert position == trace.events
        assert op_count == len(trace.ops)

    def test_default_chunk_is_power_of_two(self):
        assert DEFAULT_CHUNK_EVENTS & (DEFAULT_CHUNK_EVENTS - 1) == 0


class TestResolve:
    def test_resolve_matches_per_event_resolution(self):
        from repro.runtime.resolvers import NaturalResolver

        workload = make_workload("espresso")
        trace = record_trace(workload, workload.train_input)
        addr = trace.resolve(NaturalResolver())

        class _AddressLog(TraceSink):
            def __init__(self):
                self.resolver = NaturalResolver()
                self.addresses = []

            def on_object(self, info):
                self.resolver.on_object(info)

            def on_alloc(self, info, return_addresses):
                self.resolver.on_alloc(info, return_addresses)

            def on_free(self, obj_id):
                self.resolver.on_free(obj_id)

            def on_access(self, obj_id, offset, size, is_store, category):
                self.addresses.append(self.resolver.base_of[obj_id] + offset)

        log = _AddressLog()
        make_workload("espresso").run(log, workload.train_input)
        assert addr.tolist() == log.addresses
