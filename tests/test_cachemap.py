"""Tests for the ASCII cache-occupancy renderer."""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.reporting.cachemap import (
    MappedEntity,
    conflict_row,
    occupancy_rows,
    render_cache_map,
)

CONFIG = CacheConfig(1024, 32, 1)  # 32 sets


class TestOccupancyRows:
    def test_entity_spans_its_lines(self):
        rows = occupancy_rows(
            [MappedEntity("table", cache_offset=64, size=96)], CONFIG
        )
        (label, row), = rows
        assert "table" in label
        assert row == ".." + "AAA" + "." * 27

    def test_wraps_modulo_cache(self):
        rows = occupancy_rows(
            [MappedEntity("wrap", cache_offset=31 * 32, size=64)], CONFIG
        )
        (_label, row), = rows
        assert row[31] == "A"
        assert row[0] == "A"

    def test_hottest_entity_gets_first_symbol(self):
        rows = occupancy_rows(
            [
                MappedEntity("cold", 0, 32, weight=1),
                MappedEntity("hot", 64, 32, weight=100),
            ],
            CONFIG,
        )
        assert rows[0][0].startswith("A hot")
        assert rows[1][0].startswith("B cold")

    def test_giant_entity_fills_everything(self):
        rows = occupancy_rows([MappedEntity("giant", 0, 65536)], CONFIG)
        (_label, row), = rows
        assert row == "A" * 32


class TestConflictRow:
    def test_marks_overlap(self):
        row = conflict_row(
            [
                MappedEntity("a", 0, 64),
                MappedEntity("b", 32, 64),
            ],
            CONFIG,
        )
        assert row[0] == "-"
        assert row[1] == "#"
        assert row[2] == "-"
        assert row[3] == "."

    def test_no_entities(self):
        assert conflict_row([], CONFIG) == "." * 32


class TestRenderCacheMap:
    def test_contains_labels_and_bands(self):
        text = render_cache_map(
            [MappedEntity("tbl", 0, 64, weight=3)], CONFIG, title="demo"
        )
        assert "demo" in text
        assert "A tbl" in text
        assert "conflicts" in text
        assert "sets 0..31" in text

    def test_wide_cache_wraps_into_bands(self):
        config = CacheConfig(8192, 32, 1)  # 256 sets
        text = render_cache_map(
            [MappedEntity("x", 0, 32)], config, width=64
        )
        assert "sets 0..63" in text
        assert "sets 192..255" in text
