"""Tests for the quality study and geometry experiment result objects."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.experiments.geometry import (
    run_associative_placement,
    run_geometry_sweep,
)
from repro.experiments.quality import run_quality_study


class TestQualityStudy:
    def test_rows_and_lookup(self):
        result = run_quality_study(("go",), trials=3)
        row = result.row_for("go")
        assert row.random_trials == 3
        assert row.natural_miss > 0
        with pytest.raises(KeyError):
            result.row_for("nope")

    def test_best_random_bounded_by_mean(self):
        result = run_quality_study(("go",), trials=4)
        row = result.row_for("go")
        assert row.random_best_miss <= row.random_mean_miss

    def test_render(self):
        text = run_quality_study(("go",), trials=2).render()
        assert "BestRandom" in text and "go" in text


class TestGeometrySweepObjects:
    def test_rows_for_filters(self):
        result = run_geometry_sweep(
            ("go",),
            eval_geometries=(CacheConfig(8192, 32, 1),),
        )
        assert len(result.rows_for("go")) == 1
        assert result.rows_for("unknown") == []

    def test_pct_reduction_zero_when_natural_zero(self):
        from repro.experiments.geometry import GeometryRow

        row = GeometryRow("x", "t", "e", natural_miss=0.0, ccdp_miss=0.0)
        assert row.pct_reduction == 0.0


class TestAssociativePlacement:
    def test_rows_and_render(self):
        result = run_associative_placement(
            ("go",), geometry=CacheConfig(8192, 32, 2)
        )
        row = result.row_for("go")
        assert row.evaluated_on == "8K/32B/2-way"
        assert row.natural_miss > 0
        assert "Set-placed" in result.render()
        with pytest.raises(KeyError):
            result.row_for("nope")

    def test_both_placements_not_catastrophic(self):
        result = run_associative_placement(
            ("go",), geometry=CacheConfig(8192, 32, 2)
        )
        row = result.row_for("go")
        assert row.dm_placed_miss <= row.natural_miss * 1.2
        assert row.assoc_placed_miss <= row.natural_miss * 1.2
