"""Associativity-aware conflict cost: parity and brute-force checks.

Two pins protect the gated scan
(:meth:`~repro.core.placement_engine.ArrayPlacementEngine._gated_cost_vector`):

* **ways=1 parity** — with a single way the occupancy gate is provably
  always open, so the gated cost vector must equal the classic
  direct-mapped trapezoid bit for bit, and a placer handed a trivial
  model must reproduce the default placement exactly.
* **brute force** — on small set counts an O(S * edges * span^2) python
  reference recomputes the gated cost per candidate start from first
  principles (circular span intersection + occupancy counting); the
  vectorized grid/fold implementation must match it exactly for any
  hypothesis-drawn edge set, span layout, and way count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig
from repro.core.algorithm import CCDPPlacer
from repro.core.cache_struct import TRGIndex
from repro.core.cost_model import (
    COST_MODEL_NAMES,
    GATED_SCAN_MAX_SETS,
    ConflictCostModel,
    resolve_cost_model,
)
from repro.core.placement_engine import FIXED, UNPLACED, ArrayPlacementEngine
from repro.runtime.driver import profile_workload
from repro.workloads.synthetic import aliased_hot_set

SETS = 8
LINE = 32
CHUNK = 256
ENTITIES = [1, 2, 3]
MOVING_EID = 1


def config_for(ways: int) -> CacheConfig:
    """A geometry with exactly ``SETS`` sets at the given way count."""
    return CacheConfig(size=SETS * LINE * ways, line_size=LINE, associativity=ways)


# -- hypothesis-drawn engine states -------------------------------------------

_pair = st.tuples(st.sampled_from(ENTITIES), st.integers(0, 2))
_edge_key = st.tuples(_pair, _pair).map(
    lambda pair: pair if pair[0] <= pair[1] else (pair[1], pair[0])
)
edge_dicts = st.dictionaries(_edge_key, st.integers(1, 9), min_size=1, max_size=10)


def build_engines(data, edges, *engine_models):
    """Identical engines (one per model) over one drawn span/owner state."""
    index = TRGIndex.from_edges(dict(edges), ENTITIES)
    n = index.num_pairs
    starts = [data.draw(st.integers(0, SETS - 1)) for _ in range(n)]
    lengths = [data.draw(st.integers(1, SETS)) for _ in range(n)]
    owners = []
    for p in range(n):
        if int(index.pair_eid[p]) == MOVING_EID:
            owners.append(UNPLACED)
        else:
            owners.append(FIXED if data.draw(st.booleans()) else UNPLACED)
    engines = []
    for model in engine_models:
        ways = model.ways if model is not None else 1
        engine = ArrayPlacementEngine(
            index, config_for(max(ways, 1)), CHUNK, cost_model=model
        )
        engine.start_line[:] = starts
        engine.span_len[:] = lengths
        engine.owner[:] = owners
        engines.append(engine)
    moving = index.pair_ids(MOVING_EID)
    return engines, moving


def masked_edges(engine, moving):
    """The (moving pair, fixed neighbour, weight) edges a scan charges."""
    index = engine.index
    out = []
    for p in moving:
        for k in range(int(index.indptr[p]), int(index.indptr[p + 1])):
            n = int(index.nbr[k])
            if engine.owner[n] == FIXED:
                out.append((int(p), n, int(index.wt[k])))
    return out


def span_sets(engine, pair: int, shift: int = 0) -> set[int]:
    """The sets a pair's (possibly shifted) circular span covers."""
    start = int(engine.start_line[pair]) + shift
    length = min(int(engine.span_len[pair]), SETS)
    return {(start + j) % SETS for j in range(length)}


def brute_force_cost(engine, moving, ways: int, gate: bool = True) -> np.ndarray:
    """First-principles gated cost per candidate start."""
    edges = masked_edges(engine, moving)
    fixed_pairs = np.flatnonzero(engine.owner == FIXED)
    coverage_f = np.zeros(SETS, dtype=np.int64)
    for q in fixed_pairs:
        for t in span_sets(engine, int(q)):
            coverage_f[t] += 1
    coverage_m = np.zeros(SETS, dtype=np.int64)
    for q in moving:
        for t in span_sets(engine, int(q)):
            coverage_m[t] += 1
    cost = np.zeros(SETS, dtype=np.int64)
    for s in range(SETS):
        total = 0
        for p, n, w in edges:
            shared = span_sets(engine, n) & span_sets(engine, p, shift=s)
            for t in shared:
                if not gate or (
                    coverage_f[t] + coverage_m[(t - s) % SETS] > ways
                ):
                    total += w
        cost[s] = total
    return cost


def engine_cost_vector(engine, moving) -> np.ndarray:
    """The cost vector scan() would rank, via the engine's own path."""
    edges = masked_edges(engine, moving)
    if not edges:
        return np.zeros(SETS, dtype=np.int64)
    src = np.array([p for p, _n, _w in edges], dtype=np.int64)
    nbrs = np.array([n for _p, n, _w in edges], dtype=np.int64)
    weights = np.array([w for _p, _n, w in edges], dtype=np.int64)
    if engine._gated:
        return engine._gated_cost_vector(moving, src, nbrs, weights, None)
    return engine._trapezoid_cost_vector(src, nbrs, weights)


class TestGatedBruteForce:
    @given(data=st.data(), edges=edge_dicts, ways=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_gated_cost_matches_brute_force(self, data, edges, ways):
        (engine,), moving = build_engines(
            data, edges, ConflictCostModel(ways=ways)
        )
        assert engine._gated
        np.testing.assert_array_equal(
            engine_cost_vector(engine, moving),
            brute_force_cost(engine, moving, ways),
        )

    @given(data=st.data(), edges=edge_dicts)
    @settings(max_examples=60, deadline=None)
    def test_ways1_gated_equals_trapezoid_and_brute_force(self, data, edges):
        (classic, gated), moving = build_engines(
            data, edges, None, ConflictCostModel(ways=2)
        )
        # Force the gated code path at ways=1: the occupancy gate must
        # then be provably open everywhere, reproducing the classic scan.
        object.__setattr__(gated.cost_model, "ways", 1)
        assert gated._gated
        classic_cost = engine_cost_vector(classic, moving)
        gated_cost = engine_cost_vector(gated, moving)
        np.testing.assert_array_equal(gated_cost, classic_cost)
        np.testing.assert_array_equal(
            gated_cost, brute_force_cost(gated, moving, ways=1)
        )
        np.testing.assert_array_equal(
            gated_cost, brute_force_cost(gated, moving, ways=1, gate=False)
        )

    @given(
        data=st.data(),
        edges=edge_dicts,
        preferred=st.integers(0, SETS - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_decision_parity_at_ways1(self, data, edges, preferred):
        (classic, gated), moving = build_engines(
            data, edges, None, ConflictCostModel(ways=2)
        )
        object.__setattr__(gated.cost_model, "ways", 1)
        assert classic.scan(moving, None, preferred) == gated.scan(
            moving, None, preferred
        )

    def test_overlong_spans_clamp_to_full_coverage(self):
        edges = {((1, 0), (2, 0)): 5}
        index = TRGIndex.from_edges(edges, ENTITIES)
        model = ConflictCostModel(ways=2)
        full = ArrayPlacementEngine(index, config_for(2), CHUNK, cost_model=model)
        over = ArrayPlacementEngine(index, config_for(2), CHUNK, cost_model=model)
        for engine, length in ((full, SETS), (over, SETS + 3)):
            engine.span_len[:] = length
            engine.owner[:] = [
                UNPLACED if int(index.pair_eid[p]) == MOVING_EID else FIXED
                for p in range(index.num_pairs)
            ]
        moving = index.pair_ids(MOVING_EID)
        np.testing.assert_array_equal(
            engine_cost_vector(full, moving), engine_cost_vector(over, moving)
        )


class TestCostModel:
    def test_ways_must_be_positive(self):
        with pytest.raises(ValueError):
            ConflictCostModel(ways=0)

    def test_penalties_must_be_positive(self):
        with pytest.raises(ValueError):
            ConflictCostModel(entity_penalties={3: 0})

    def test_trivial(self):
        assert ConflictCostModel().is_trivial
        assert ConflictCostModel(ways=1).is_trivial
        assert not ConflictCostModel(ways=2).is_trivial
        assert not ConflictCostModel(entity_penalties={1: 4}).is_trivial

    def test_resolve_direct_is_none(self):
        assert resolve_cost_model("direct", config_for(2)) is None

    def test_resolve_assoc_takes_geometry_ways(self):
        model = resolve_cost_model("assoc", config_for(4))
        assert model.ways == 4
        assert model.entity_penalties is None

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            resolve_cost_model("quantum", config_for(2))
        assert "direct" in COST_MODEL_NAMES

    def test_large_geometry_falls_back_to_classic(self):
        sets = 2 * GATED_SCAN_MAX_SETS
        config = CacheConfig(size=sets * LINE * 2, line_size=LINE, associativity=2)
        index = TRGIndex.from_edges({((1, 0), (2, 0)): 1}, ENTITIES)
        engine = ArrayPlacementEngine(
            index, config, CHUNK, cost_model=ConflictCostModel(ways=2)
        )
        assert not engine._gated


class TestPlacerIntegration:
    def test_trivial_model_reproduces_default_placement(self):
        workload = aliased_hot_set()
        config = config_for(1)
        profile = profile_workload(workload, workload.train_input, config)
        baseline = CCDPPlacer(profile, cache_config=config).place()
        pinned = CCDPPlacer(
            profile,
            cache_config=config,
            cost_model=ConflictCostModel(ways=1),
        ).place()
        assert baseline.global_offsets == pinned.global_offsets
        assert baseline.heap_table == pinned.heap_table
        assert baseline.stack_base == pinned.stack_base

    def test_assoc_model_can_change_the_placement(self):
        workload = aliased_hot_set()
        config = config_for(2)
        profile = profile_workload(workload, workload.train_input, config)
        baseline = CCDPPlacer(profile, cache_config=config).place()
        gated = CCDPPlacer(
            profile,
            cache_config=config,
            cost_model=ConflictCostModel(ways=2),
        ).place()
        # Not required to differ for every program, but the scan must
        # still produce a structurally valid placement either way.
        assert set(gated.global_offsets) == set(baseline.global_offsets)

    def test_scalar_engine_rejects_nontrivial_model(self):
        workload = aliased_hot_set()
        config = config_for(2)
        profile = profile_workload(workload, workload.train_input, config)
        with pytest.raises(ValueError, match="array placement engine"):
            CCDPPlacer(
                profile,
                cache_config=config,
                engine="scalar",
                cost_model=ConflictCostModel(ways=2),
            )


class TestTwoLevelPenalties:
    def test_penalties_price_every_entity_at_least_l2(self):
        from repro.cache.hierarchy import L2_TIME, entity_l2_penalties
        from repro.runtime.driver import record_trace

        workload = aliased_hot_set()
        trace = record_trace(workload, workload.train_input)
        penalties = entity_l2_penalties(trace)
        assert penalties
        base = round(L2_TIME)
        for eid, penalty in penalties.items():
            assert isinstance(penalty, int)
            assert penalty >= base, (eid, penalty)

    def test_two_level_resolution_builds_penalties_from_trace(self):
        from repro.runtime.driver import record_trace

        workload = aliased_hot_set()
        trace = record_trace(workload, workload.train_input)
        model = resolve_cost_model("two-level", config_for(2), trace)
        assert model.ways == 2
        assert model.entity_penalties
