"""Probe-mode lookups: one counter source of truth for warm reloads.

A probe is a batch of speculative store reads whose outcome only counts
as a whole.  These tests pin the contract: lookups made under
``store.probing()`` leave the real hit/miss counters untouched until the
caller commits, a failed probe commits nothing, and a committed probe
folds only its hits (the fallback path accounts for its own misses).
"""

from repro.store import ArtifactStore


def _put(store, kind, fields, payload):
    digest = store.key(kind, fields)
    store.put(kind, digest, fields, payload)
    return digest


class TestProbeTally:
    def test_probe_lookups_do_not_touch_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digest = _put(store, "profile", {"w": "a"}, {"v": 1})
        with store.probing() as probe:
            assert store.get("profile", digest) == {"v": 1}
            assert store.get("profile", "0" * 64) is None
        assert probe.hits == 1
        assert probe.misses == 1
        assert store.counters.hits == 0
        assert store.counters.misses == 0

    def test_abandoned_probe_commits_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digest = _put(store, "profile", {"w": "a"}, {"v": 1})
        with store.probing():
            store.get("profile", digest)
            store.get("profile", "0" * 64)  # miss abandons the warm path
        assert store.counters.hits == 0
        assert store.counters.misses == 0

    def test_commit_folds_hits_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = _put(store, "profile", {"w": "a"}, {"v": 1})
        second = _put(store, "placement", {"w": "a"}, {"v": 2})
        with store.probing() as probe:
            store.get("profile", first)
            store.get("placement", second)
            store.get("profile", "0" * 64)
        probe.commit()
        probe.commit()  # idempotent
        assert store.counters.hits == 2
        assert store.counters.misses == 0

    def test_misses_outside_probe_count_immediately(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get("profile", "0" * 64) is None
        assert store.counters.misses == 1

    def test_corrupt_entry_counts_even_under_probe(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digest = _put(store, "profile", {"w": "a"}, {"v": 1})
        path = store.entry_path("profile", digest)
        path.write_text("{not json")
        with store.probing() as probe:
            assert store.get("profile", digest) is None
        # The entry really was discarded: corruption is never deferred.
        assert store.counters.corrupt == 1
        assert not path.exists()
        assert probe.misses == 1
        assert store.counters.misses == 0

    def test_probes_nest_innermost_wins(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digest = _put(store, "profile", {"w": "a"}, {"v": 1})
        with store.probing() as outer:
            with store.probing() as inner:
                store.get("profile", digest)
            store.get("profile", digest)
        assert inner.hits == 1
        assert outer.hits == 1
        assert store.counters.hits == 0
