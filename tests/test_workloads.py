"""Tests for the nine synthetic benchmark workloads.

Each workload is validated for: registration, two inputs, determinism,
bounds-safe accesses (the Program validates every access), balanced heap
lifetimes, and the category mix the paper's Table 1 row implies.
"""

from __future__ import annotations

import pytest

from repro.runtime.driver import collect_stats
from repro.trace.events import Category
from repro.trace.sinks import TraceSink
from repro.workloads import make_workload, workload_names

ALL_NAMES = (
    "deltablue",
    "espresso",
    "gcc",
    "groff",
    "compress",
    "go",
    "m88ksim",
    "fpppp",
    "mgrid",
)

#: Paper Section 5: heap placement only for these four.
HEAP_PLACED = {"deltablue", "espresso", "groff", "gcc"}


class TestRegistry:
    def test_all_nine_registered_in_paper_order(self):
        assert tuple(workload_names()) == ALL_NAMES

    def test_make_workload_unknown_raises(self):
        with pytest.raises(KeyError):
            make_workload("doom")

    def test_each_workload_has_train_and_test_inputs(self):
        for name in ALL_NAMES:
            workload = make_workload(name)
            assert len(workload.inputs) >= 2
            assert workload.train_input != workload.test_input

    def test_heap_placement_flags_match_paper(self):
        for name in ALL_NAMES:
            workload = make_workload(name)
            assert workload.place_heap == (name in HEAP_PLACED), name


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEachWorkload:
    def test_runs_clean_with_validation(self, name):
        # Program validates every access against object bounds; any
        # out-of-range offset or use-after-free raises.
        workload = make_workload(name)
        stats = collect_stats(workload, workload.train_input)
        assert stats.memory_refs > 5000

    def test_deterministic_trace(self, name):
        workload = make_workload(name)

        class Digest(TraceSink):
            def __init__(self):
                self.value = 0
                self.count = 0

            def on_access(self, obj_id, offset, size, is_store, category):
                self.count += 1
                self.value = (
                    self.value * 1000003
                    + hash((obj_id, offset, size, is_store, int(category)))
                ) & 0xFFFFFFFFFFFF

        first, second = Digest(), Digest()
        workload.run(first, workload.train_input)
        make_workload(name).run(second, workload.train_input)
        assert first.count == second.count
        assert first.value == second.value

    def test_inputs_differ(self, name):
        workload = make_workload(name)
        train = collect_stats(workload, workload.train_input)
        test = collect_stats(make_workload(name), workload.test_input)
        assert train.memory_refs != test.memory_refs

    def test_heap_allocations_balanced(self, name):
        workload = make_workload(name)
        stats = collect_stats(workload, workload.train_input)
        assert stats.free_count <= stats.alloc_count
        if stats.alloc_count:
            # Every workload frees nearly everything it allocates.
            assert stats.free_count >= stats.alloc_count * 0.9

    def test_instruction_mix_plausible(self, name):
        workload = make_workload(name)
        stats = collect_stats(workload, workload.train_input)
        assert 10.0 <= stats.pct_loads + stats.pct_stores <= 75.0


class TestCategoryMixes:
    def test_compress_is_global_dominated_with_no_heap(self):
        stats = collect_stats(make_workload("compress"), "bigtest-30k")
        assert stats.pct_refs(Category.GLOBAL) > 60
        assert stats.alloc_count == 0

    def test_mgrid_single_giant_object_dominates(self):
        stats = collect_stats(make_workload("mgrid"), "grid-32")
        giant_refs = max(
            (
                refs
                for obj_id, refs in stats.refs_by_object.items()
                if stats.object_sizes.get(obj_id, 0) > 32768
            ),
            default=0,
        )
        assert giant_refs / stats.memory_refs > 0.9

    def test_deltablue_is_heap_dominated(self):
        stats = collect_stats(make_workload("deltablue"), "chain-900")
        assert stats.pct_refs(Category.HEAP) > 40
        assert stats.alloc_count > 1000

    def test_gcc_touches_all_categories(self):
        stats = collect_stats(make_workload("gcc"), "1recog")
        for category in Category:
            assert stats.pct_refs(category) > 1.0, category

    def test_fpppp_has_no_heap(self):
        stats = collect_stats(make_workload("fpppp"), "natoms-4")
        assert stats.alloc_count == 0
        assert stats.pct_refs(Category.STACK) > 10

    def test_espresso_allocates_heavily(self):
        stats = collect_stats(make_workload("espresso"), "bca")
        assert stats.alloc_count > 500
        assert 16 <= stats.avg_alloc_size <= 128
