"""Unit tests for Phase 7 final global ordering."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.global_order import LayoutAtom, order_globals

CACHE = 1024


def layout_of(atoms, unpopular=(), popularity=None, affinity=None, sizes=None):
    entity_sizes = dict(sizes or {})
    for atom in atoms:
        for eid in atom.members:
            entity_sizes.setdefault(eid, atom.size)
    for eid, size, _refs in unpopular:
        entity_sizes.setdefault(eid, size)
    return order_globals(
        list(atoms),
        list(unpopular),
        popularity or {},
        affinity or {},
        CACHE,
        entity_sizes,
    )


class TestSeeding:
    def test_most_popular_atom_starts_segment(self):
        atoms = [
            LayoutAtom(members={1: 0}, preferred_offset=128, size=64),
            LayoutAtom(members={2: 0}, preferred_offset=512, size=64),
        ]
        layout = layout_of(atoms, popularity={1: 5, 2: 50})
        assert layout.offsets[2] == 0
        assert layout.base_cache_offset == 512

    def test_empty_input(self):
        layout = layout_of([])
        assert layout.offsets == {}
        assert layout.total_size == 0


class TestPreferredOffsets:
    def test_adjacent_preferred_offsets_realized(self):
        # Atom 2's preferred offset is exactly where atom 1 ends.
        atoms = [
            LayoutAtom(members={1: 0}, preferred_offset=0, size=64),
            LayoutAtom(members={2: 0}, preferred_offset=64, size=64),
        ]
        layout = layout_of(atoms, popularity={1: 10, 2: 5})
        assert layout.offsets[1] == 0
        assert layout.offsets[2] == 64
        assert layout.padding_bytes == 0

    def test_every_popular_atom_hits_preferred_cache_offset(self):
        atoms = [
            LayoutAtom(members={1: 0}, preferred_offset=0, size=96),
            LayoutAtom(members={2: 0}, preferred_offset=256, size=64),
            LayoutAtom(members={3: 0}, preferred_offset=800, size=32),
        ]
        layout = layout_of(atoms, popularity={1: 10, 2: 5, 3: 2})
        for eid, atom in ((1, atoms[0]), (2, atoms[1]), (3, atoms[2])):
            realized = (layout.base_cache_offset + layout.offsets[eid]) % CACHE
            assert realized == atom.preferred_offset

    def test_gap_filled_with_unpopular(self):
        atoms = [
            LayoutAtom(members={1: 0}, preferred_offset=0, size=64),
            LayoutAtom(members={2: 0}, preferred_offset=512, size=64),
        ]
        unpopular = [(10, 200, 5), (11, 100, 9)]
        layout = layout_of(atoms, unpopular, popularity={1: 10, 2: 5})
        # Both fillers fit in the 448-byte gap between the atoms.
        assert 64 <= layout.offsets[10] < 512
        assert 64 <= layout.offsets[11] < 512
        assert layout.offsets[2] == 512

    def test_gap_remainder_becomes_padding(self):
        atoms = [
            LayoutAtom(members={1: 0}, preferred_offset=0, size=64),
            LayoutAtom(members={2: 0}, preferred_offset=512, size=64),
        ]
        layout = layout_of(atoms, popularity={1: 10, 2: 5})
        assert layout.padding_bytes == 448

    def test_adjacency_tie_broken_by_affinity(self):
        atoms = [
            LayoutAtom(members={1: 0}, preferred_offset=0, size=64),
            LayoutAtom(members={2: 0}, preferred_offset=64, size=64),
            LayoutAtom(members={3: 0}, preferred_offset=64, size=64),
        ]
        affinity = {(1, 3): 100, (1, 2): 1}
        layout = layout_of(atoms, popularity={1: 10, 2: 5, 3: 5}, affinity=affinity)
        assert layout.offsets[3] == 64  # higher affinity with previous


class TestUnpopularPlacement:
    def test_leftover_unpopular_by_refcount(self):
        unpopular = [(10, 64, 1), (11, 64, 100), (12, 64, 10)]
        layout = layout_of([], unpopular)
        assert layout.offsets[11] < layout.offsets[12] < layout.offsets[10]

    def test_packed_group_members_keep_relative_offsets(self):
        atoms = [
            LayoutAtom(members={1: 0, 2: 8, 3: 16}, preferred_offset=96, size=24)
        ]
        layout = layout_of(atoms, sizes={1: 8, 2: 8, 3: 8})
        assert layout.offsets[2] - layout.offsets[1] == 8
        assert layout.offsets[3] - layout.offsets[1] == 16


atoms_strategy = st.lists(
    st.tuples(st.integers(0, CACHE - 8), st.integers(8, 256)),
    min_size=0,
    max_size=6,
).map(
    lambda specs: [
        LayoutAtom(members={i + 1: 0}, preferred_offset=pref - pref % 8, size=size)
        for i, (pref, size) in enumerate(specs)
    ]
)

unpopular_strategy = st.lists(
    st.tuples(st.integers(8, 256), st.integers(0, 1000)),
    min_size=0,
    max_size=8,
).map(
    lambda specs: [
        (100 + i, size, refs) for i, (size, refs) in enumerate(specs)
    ]
)


@given(atoms_strategy, unpopular_strategy)
@settings(max_examples=80, deadline=None)
def test_layout_never_overlaps_and_places_everything(atoms, unpopular):
    layout = layout_of(atoms, unpopular)
    sizes = {}
    for atom in atoms:
        for eid in atom.members:
            sizes[eid] = atom.size
    for eid, size, _refs in unpopular:
        sizes[eid] = size
    assert set(layout.offsets) == set(sizes)
    spans = sorted((off, off + sizes[eid]) for eid, off in layout.offsets.items())
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2, f"overlap at {s2}"
