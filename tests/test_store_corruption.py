"""Defensive reads: corrupt store entries degrade to recompute-and-rewrite.

A truncated file, a tampered payload, an envelope from another code
version, or an undecodable artifact must never crash a run or serve
wrong data — the store treats each as a miss, deletes the entry, and the
caller recomputes and rewrites it (mirroring how the trace layer
degrades on :class:`~repro.trace.sinks.TraceError`).
"""

from __future__ import annotations

import json

import pytest

from repro.store import ArtifactStore, use_store


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def put_entry(store, payload=None, kind="profile", fields=None):
    fields = fields or {"trace": "abc"}
    digest = store.key(kind, fields)
    store.put(kind, digest, fields, payload or {"value": 1})
    return digest, store.entry_path(kind, digest)


class TestCorruptEntries:
    def test_roundtrip_hit(self, store):
        digest, _path = put_entry(store, {"value": 42})
        assert store.get("profile", digest) == {"value": 42}
        assert store.counters.hits == 1

    def test_truncated_payload(self, store):
        digest, path = put_entry(store)
        path.write_text(path.read_text()[:40])
        assert store.get("profile", digest) is None
        assert store.counters.corrupt == 1
        assert not path.exists(), "corrupt entry must be deleted"

    def test_empty_file(self, store):
        digest, path = put_entry(store)
        path.write_text("")
        assert store.get("profile", digest) is None
        assert store.counters.corrupt == 1

    def test_tampered_payload_fails_digest(self, store):
        digest, path = put_entry(store, {"value": 1})
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 2  # digest no longer matches
        path.write_text(json.dumps(envelope))
        assert store.get("profile", digest) is None
        assert store.counters.corrupt == 1
        assert not path.exists()

    def test_version_salt_mismatch(self, store, monkeypatch):
        digest, path = put_entry(store)
        monkeypatch.setenv("REPRO_CACHE_SALT", "a-newer-code-version")
        assert store.get("profile", digest) is None
        assert store.counters.corrupt == 1
        assert not path.exists(), "stale-salt entry must be evicted"

    def test_kind_mismatch(self, store):
        digest, _path = put_entry(store, kind="profile")
        target = store.entry_path("placement", digest)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.entry_path("profile", digest).read_text())
        assert store.get("placement", digest) is None
        assert store.counters.corrupt == 1

    def test_missing_entry_is_plain_miss(self, store):
        assert store.get("profile", "0" * 64) is None
        assert store.counters.misses == 1
        assert store.counters.corrupt == 0


class TestRecomputeAndRewrite:
    def test_get_or_compute_recovers(self, store):
        fields = {"trace": "abc"}
        calls = []

        def compute():
            calls.append(1)
            return {"value": 7}

        identity = dict
        first = store.get_or_compute(
            "profile", fields, encode=identity, decode=identity, compute=compute
        )
        # Corrupt the freshly written entry in place.
        path = store.entry_path("profile", store.key("profile", fields))
        path.write_text(path.read_text()[:25])
        second = store.get_or_compute(
            "profile", fields, encode=identity, decode=identity, compute=compute
        )
        assert first == second == {"value": 7}
        assert len(calls) == 2, "corruption must trigger recompute"
        assert path.exists(), "recompute must rewrite the entry"
        # Third call: the rewritten entry serves a clean hit.
        third = store.get_or_compute(
            "profile", fields, encode=identity, decode=identity, compute=compute
        )
        assert third == {"value": 7}
        assert len(calls) == 2

    def test_decode_failure_treated_as_corruption(self, store):
        fields = {"trace": "abc"}

        def bad_decode(payload):
            raise ValueError("schema drift")

        store.put("profile", store.key("profile", fields), fields, {"v": 1})
        value = store.get_or_compute(
            "profile",
            fields,
            encode=dict,
            decode=bad_decode,
            compute=lambda: {"v": 2},
        )
        assert value == {"v": 2}
        assert store.counters.corrupt == 1

    def test_pipeline_recovers_from_truncation(
        self, tmp_path, toy_workload, small_cache
    ):
        """End-to-end: a truncated placement entry heals on the next run."""
        from repro.profiling.serialize import placement_to_dict
        from repro.runtime.driver import build_placement
        from repro.trace.buffer import record_trace

        root = tmp_path / "store"
        trace = record_trace(toy_workload, toy_workload.train_input)
        with use_store(ArtifactStore(root)):
            _, placement_cold = build_placement(
                toy_workload, cache_config=small_cache, trace=trace
            )
        for path in (root / "objects" / "placement").rglob("*.json"):
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        rerun = ArtifactStore(root)
        with use_store(rerun):
            _, placement_warm = build_placement(
                toy_workload, cache_config=small_cache, trace=trace
            )
        assert rerun.counters.corrupt >= 1
        assert rerun.counters.writes >= 1, "entry must be rewritten"
        assert placement_to_dict(placement_warm) == placement_to_dict(
            placement_cold
        )


class TestGcAndClear:
    def test_gc_removes_stale_salt(self, store, monkeypatch):
        put_entry(store, fields={"trace": "a"})
        monkeypatch.setenv("REPRO_CACHE_SALT", "next-version")
        removed, removed_bytes = store.gc()
        assert removed == 1
        assert removed_bytes > 0
        assert store.stats().entries == 0

    def test_gc_max_bytes_keeps_newest(self, store):
        import os
        import time

        first, first_path = put_entry(store, fields={"trace": "a"})
        second, second_path = put_entry(store, fields={"trace": "b"})
        old = time.time() - 1000
        os.utime(first_path, (old, old))
        size = second_path.stat().st_size
        removed, _bytes = store.gc(max_bytes=size)
        assert removed == 1
        assert not first_path.exists()
        assert second_path.exists()

    def test_gc_max_age(self, store):
        import os
        import time

        _digest, path = put_entry(store)
        old = time.time() - 10 * 86400
        os.utime(path, (old, old))
        removed, _bytes = store.gc(max_age_days=5)
        assert removed == 1

    def test_clear(self, store):
        put_entry(store, fields={"trace": "a"})
        put_entry(store, fields={"trace": "b"})
        assert store.clear() == 2
        assert store.stats().entries == 0
