"""Golden pins for the paper tables on two small workloads.

Tables 1 and 3 are pure functions of the deterministic workload traces,
so their numbers should never drift unless the workload generators, the
statistics collector, or the table experiments deliberately change.
This suite pins the full row contents for the two fastest benchmarks
(``go``, ``mgrid``) to JSON fixtures under ``tests/goldens/``.

When an intentional change shifts the numbers, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_tables.py --update-goldens

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments import run_table1, run_table3

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The two quickest benchmarks, chosen so the pins stay cheap while still
#: covering both a placement success story (go) and the paper's canonical
#: failure case (mgrid: one huge array receiving ~all references).
PROGRAMS = ("go", "mgrid")


def _table1_snapshot(program: str) -> dict:
    result = run_table1([program])
    return {
        "table": 1,
        "program": program,
        "rows": [dataclasses.asdict(row) for row in result.rows],
    }


def _table3_snapshot(program: str) -> dict:
    result = run_table3([program])
    row = result.rows[program]
    return {
        "table": 3,
        "program": program,
        "static_objects": row.static_objects,
        "objects_per_bucket": row.objects_per_bucket,
        "pct_refs_per_bucket": row.pct_refs_per_bucket,
    }


def _check_against_golden(request, name: str, snapshot: dict) -> None:
    """Compare ``snapshot`` to the fixture, or rewrite it under the flag."""
    path = GOLDEN_DIR / f"{name}.json"
    normalized = json.loads(json.dumps(snapshot))
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(normalized, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote golden {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; run with --update-goldens to create it"
        )
    golden = json.loads(path.read_text())
    assert normalized == golden, (
        f"{name} drifted from its golden pin; if the change is intentional, "
        f"regenerate with --update-goldens and review the fixture diff"
    )


@pytest.mark.parametrize("program", PROGRAMS)
def test_table1_matches_golden(request, program):
    _check_against_golden(request, f"table1_{program}", _table1_snapshot(program))


@pytest.mark.parametrize("program", PROGRAMS)
def test_table3_matches_golden(request, program):
    _check_against_golden(request, f"table3_{program}", _table3_snapshot(program))


@pytest.mark.parametrize("program", PROGRAMS)
def test_table1_rows_are_self_consistent(program):
    """Sanity independent of the pins: category shares sum to ~100%."""
    for row in run_table1([program]).rows:
        categories = row.pct_stack + row.pct_global + row.pct_heap + row.pct_const
        assert categories == pytest.approx(100.0, abs=0.1)
        assert 0 < row.pct_loads + row.pct_stores <= 100.0
        assert row.instructions > 0
