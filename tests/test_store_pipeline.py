"""Incremental pipeline execution on top of the artifact store.

A second run of the same experiment against a warm store must (a) never
execute the workload, (b) report zero misses, and (c) reproduce the cold
run's results bit-for-bit.  The fan-out helpers must serve warm shards
inline and dispatch only the cold remainder.
"""

from __future__ import annotations

import pytest

from repro.profiling.serialize import placement_to_dict
from repro.runtime.driver import run_experiment
from repro.runtime.parallel import (
    ExperimentSpec,
    PlacementSpec,
    run_experiments,
    run_placements,
)
from repro.store import ArtifactStore, use_store
from repro.workloads import make_workload


def assert_same_experiment(first, second):
    assert placement_to_dict(first.placement) == placement_to_dict(
        second.placement
    )
    assert first.profile == second.profile
    for arm in ("original", "ccdp", "random"):
        a, b = getattr(first, arm), getattr(second, arm)
        if a is None:
            assert b is None
            continue
        assert a.cache == b.cache
        assert a.paging == b.paging


class TestWarmExperiment:
    @pytest.mark.parametrize("classify,track_pages", [(False, False), (True, True)])
    def test_second_run_is_all_hits(self, tmp_path, classify, track_pages):
        root = tmp_path / "store"
        with use_store(ArtifactStore(root)):
            cold = run_experiment(
                make_workload("compress"),
                include_random=True,
                classify=classify,
                track_pages=track_pages,
            )
        warm_store = ArtifactStore(root)
        with use_store(warm_store):
            warm = run_experiment(
                make_workload("compress"),
                include_random=True,
                classify=classify,
                track_pages=track_pages,
            )
        assert warm_store.counters.misses == 0
        assert warm_store.counters.writes == 0
        assert warm_store.counters.hits > 0
        assert_same_experiment(cold, warm)

    def test_warm_run_never_executes_workload(self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        with use_store(ArtifactStore(root)):
            run_experiment(make_workload("compress"))

        def boom(self, sink, input_name):
            raise AssertionError("workload ran on a warm store")

        with use_store(ArtifactStore(root)):
            workload = make_workload("compress")
            monkeypatch.setattr(type(workload), "run", boom)
            run_experiment(workload)

    def test_scalar_engine_bypasses_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with use_store(store):
            run_experiment(make_workload("compress"), engine="scalar")
        assert store.counters.hits == 0
        assert store.counters.writes == 0


class TestWarmFanOut:
    def test_run_experiments_serves_warm_shards_inline(self, tmp_path):
        specs = [
            ExperimentSpec(workload="compress"),
            ExperimentSpec(workload="deltablue"),
        ]
        root = tmp_path / "store"
        with use_store(ArtifactStore(root)):
            cold = run_experiments(specs, jobs=1)
        warm_store = ArtifactStore(root)
        with use_store(warm_store):
            warm = run_experiments(specs, jobs=2)
        assert warm_store.counters.misses == 0
        for first, second in zip(cold, warm):
            assert_same_experiment(first, second)

    def test_partial_warm_dispatches_only_cold(self, tmp_path):
        root = tmp_path / "store"
        with use_store(ArtifactStore(root)):
            run_experiments([ExperimentSpec(workload="compress")], jobs=1)
        mixed_store = ArtifactStore(root)
        specs = [
            ExperimentSpec(workload="compress"),
            ExperimentSpec(workload="deltablue"),
        ]
        with use_store(mixed_store):
            results = run_experiments(specs, jobs=1)
        assert len(results) == 2
        assert results[0].workload == "compress"
        assert results[1].workload == "deltablue"
        # The deltablue shard computed fresh and persisted its stages.
        assert mixed_store.counters.writes > 0
        rerun_store = ArtifactStore(root)
        with use_store(rerun_store):
            run_experiments(specs, jobs=1)
        assert rerun_store.counters.misses == 0

    def test_run_placements_warm(self, tmp_path):
        specs = [PlacementSpec(workload="compress")]
        root = tmp_path / "store"
        with use_store(ArtifactStore(root)):
            cold = run_placements(specs, jobs=1)
        warm_store = ArtifactStore(root)
        with use_store(warm_store):
            warm = run_placements(specs, jobs=1)
        assert warm_store.counters.misses == 0
        assert placement_to_dict(cold[0]) == placement_to_dict(warm[0])


class TestGcPins:
    """``repro cache gc`` must not collect fingerprints a live daemon pinned."""

    def _seed_trace(self, store):
        from repro.store import remember_and_save
        from repro.trace.buffer import record_trace

        workload = make_workload("compress")
        trace = record_trace(workload, "smalltest")
        return remember_and_save(store, "compress", "smalltest", trace)

    def test_gc_spares_pinned_trace(self, tmp_path):
        from repro.store import load_trace_by_fingerprint, trace_data_path

        store = ArtifactStore(tmp_path / "store")
        fingerprint = self._seed_trace(store)
        store.pin_trace(fingerprint)
        # Aggressive gc from a *second* store handle (as `repro cache gc`
        # in another process would open): age and byte pressure together
        # would normally evict everything.
        gc_store = ArtifactStore(tmp_path / "store")
        gc_store.gc(max_bytes=0, max_age_days=0.0)
        assert load_trace_by_fingerprint(store, fingerprint) is not None
        assert trace_data_path(store, fingerprint).exists()

    def test_gc_collects_after_unpin(self, tmp_path):
        from repro.store import trace_data_path

        store = ArtifactStore(tmp_path / "store")
        fingerprint = self._seed_trace(store)
        store.pin_trace(fingerprint)
        store.unpin_trace(fingerprint)
        store.gc(max_bytes=0, max_age_days=0.0)
        assert not trace_data_path(store, fingerprint).exists()

    def test_stale_pin_from_dead_pid_is_swept(self, tmp_path):
        from repro.store import trace_data_path

        store = ArtifactStore(tmp_path / "store")
        fingerprint = self._seed_trace(store)
        # Forge a pin from a pid that cannot be alive.
        store.pins_dir.mkdir(parents=True, exist_ok=True)
        dead = store.pins_dir / f"{fingerprint}.999999999.pin"
        dead.write_text("999999999\n")
        assert store.pinned_fingerprints() == set()
        assert not dead.exists()
        store.gc(max_bytes=0, max_age_days=0.0)
        assert not trace_data_path(store, fingerprint).exists()

    def test_release_pins_drops_only_this_process(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fingerprint = self._seed_trace(store)
        store.pin_trace(fingerprint)
        foreign = store.pins_dir / f"{fingerprint}.1.pin"
        foreign.write_text("1\n")  # pid 1 is always alive
        assert store.release_pins() == 1
        assert foreign.exists()
        assert store.pinned_fingerprints() == {fingerprint}
