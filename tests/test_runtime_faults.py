"""Fault-tolerant fan-out: retries, timeouts, crashes, degradation.

The resilient executor is exercised two ways: directly through
``_resilient_map`` with tiny picklable workers (fast, covers every
retry/degradation path in isolation) and end-to-end through
``run_experiments``/``run_table2`` with injected faults (proves a
faulted sweep produces the same results as a clean one).

Pooled fault injection works because Linux forks workers: the
``REPRO_FAULTS`` value set via monkeypatch is inherited by the pool's
child processes and re-read inside ``_pool_entry``.
"""

import multiprocessing
import time

import pytest

from repro.experiments.common import clear_cache, set_parallel_jobs
from repro.experiments.missrate_tables import run_table2
from repro.runtime import faults, parallel
from repro.runtime.faults import (
    FaultPlan,
    FaultSpec,
    FaultToleranceError,
    RetryPolicy,
    ShardFailedError,
)
from repro.runtime.parallel import ExperimentSpec, run_experiments


@pytest.fixture(autouse=True)
def _clean_fanout_state(monkeypatch):
    """Each test starts with no faults, default policy, empty caches."""
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    monkeypatch.delenv(faults.ENV_HANG_SECONDS, raising=False)
    parallel.set_retry_policy(RetryPolicy())
    parallel.reset_fanout_reports()
    clear_cache()
    set_parallel_jobs(1)
    yield
    parallel.set_retry_policy(RetryPolicy())
    parallel.reset_fanout_reports()
    clear_cache()
    set_parallel_jobs(1)


# -- picklable toy workers (pool entries must be module-level) ----------------


def _pool_square(value):
    """Pool worker: outcome is ``(result, telemetry_payload)``."""
    return value * value, None


def _inline_square(value):
    return value * value


def _pool_fail_odd(value):
    if value % 2:
        raise ValueError(f"odd value {value}")
    return value * value, None


def _squares(values, jobs, policy=None):
    labels = [f"task{value}" for value in values]
    return parallel._resilient_map(
        list(values), labels, _pool_square, _inline_square, jobs, policy
    )


# -- plan parsing -------------------------------------------------------------


class TestFaultPlan:
    def test_parse_entries(self):
        plan = FaultPlan.parse("crash@1,hang@2#1,oom@0#*, corrupt@3 ")
        assert plan.specs == (
            FaultSpec("crash", 1, 0),
            FaultSpec("hang", 2, 1),
            FaultSpec("oom", 0, None),
            FaultSpec("corrupt", 3, 0),
        )

    def test_parse_rejects_bad_entries(self):
        for text in ("explode@1", "crash", "crash@x", "crash@1#y"):
            with pytest.raises(ValueError):
                FaultPlan.parse(text)

    def test_wildcard_attempt_matches_every_attempt(self):
        plan = FaultPlan.parse("oom@2#*")
        assert plan.fault_for(2, 0) is not None
        assert plan.fault_for(2, 7) is not None
        assert plan.fault_for(1, 0) is None

    def test_default_attempt_is_first_only(self):
        plan = FaultPlan.parse("crash@1")
        assert plan.fault_for(1, 0) is not None
        assert plan.fault_for(1, 1) is None

    def test_from_env(self):
        plan = FaultPlan.from_env(
            {faults.ENV_FAULTS: "hang@0", faults.ENV_HANG_SECONDS: "2.5"}
        )
        assert plan.specs == (FaultSpec("hang", 0, 0),)
        assert plan.hang_seconds == 2.5
        assert not FaultPlan.from_env({})

    def test_planned_count_ignores_out_of_range_tasks(self):
        plan = FaultPlan.parse("crash@0,oom@7")
        assert plan.planned_count(3) == 1
        assert plan.planned_count(8) == 2


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay(3, 1) == policy.delay(3, 1)
        assert policy.delay(3, 1) != policy.delay(4, 1)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff=0.1, backoff_cap=0.4, jitter=0.0)
        assert policy.delay(0, 0) == pytest.approx(0.1)
        assert policy.delay(0, 1) == pytest.approx(0.2)
        assert policy.delay(0, 10) == pytest.approx(0.4)

    def test_zero_backoff_means_no_delay(self):
        assert RetryPolicy(backoff=0.0).delay(5, 2) == 0.0


# -- inline (jobs=1) retry machinery ------------------------------------------


class TestInlineResilience:
    def test_retry_heals_transient_fault(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@1")
        policy = RetryPolicy(backoff=0.0)
        results, report = _squares([2, 3, 4], jobs=1, policy=policy)
        assert results == [4, 9, 16]
        assert report.retries == 1
        assert report.completed == 3
        assert not report.degraded

    def test_best_effort_leaves_hole_and_records_failure(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@1#*")
        policy = RetryPolicy(max_retries=1, backoff=0.0, best_effort=True)
        results, report = _squares([2, 3, 4], jobs=1, policy=policy)
        assert results == [4, None, 16]
        assert [f.label for f in report.failures] == ["task3"]
        assert report.failures[0].attempts == 2
        assert report.degraded

    def test_fail_fast_raises_with_report(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@0#*")
        policy = RetryPolicy(max_retries=0, best_effort=False)
        with pytest.raises(FaultToleranceError) as info:
            _squares([2, 3], jobs=1, policy=policy)
        assert [f.label for f in info.value.report.failures] == ["task2"]

    def test_inline_crash_and_hang_are_simulated(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "crash@0,hang@1")
        policy = RetryPolicy(backoff=0.0)
        results, report = _squares([2, 3], jobs=1, policy=policy)
        assert results == [4, 9]
        assert report.crashes == 1
        assert report.timeouts == 1
        assert report.retries == 2

    def test_report_accumulates_in_module_state(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@0")
        _squares([5], jobs=1, policy=RetryPolicy(backoff=0.0))
        report = parallel.last_fanout_report()
        assert report is not None
        assert report.retries == 1
        assert report.injected == 1


# -- pooled (jobs>1) retry machinery ------------------------------------------


class TestPooledResilience:
    def test_worker_exception_retries_then_degrades(self):
        policy = RetryPolicy(max_retries=1, backoff=0.0, best_effort=True)
        results, report = parallel._resilient_map(
            [2, 3, 4],
            ["task2", "task3", "task4"],
            _pool_fail_odd,
            lambda v: v * v,
            jobs=2,
            policy=policy,
        )
        assert results == [4, None, 16]
        assert [f.label for f in report.failures] == ["task3"]
        assert report.retries == 1

    def test_injected_oom_heals_via_retry(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@0")
        results, report = _squares(
            [2, 3, 4], jobs=2, policy=RetryPolicy(backoff=0.0)
        )
        assert results == [4, 9, 16]
        assert report.retries >= 1
        assert report.completed == 3

    def test_worker_crash_respawns_pool(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "crash@0")
        results, report = _squares(
            [2, 3, 4], jobs=2, policy=RetryPolicy(backoff=0.0)
        )
        assert results == [4, 9, 16]
        assert report.crashes >= 1
        assert report.completed == 3

    def test_hung_worker_hits_deadline(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "hang@1")
        monkeypatch.setenv(faults.ENV_HANG_SECONDS, "600")
        policy = RetryPolicy(task_timeout=0.5, backoff=0.0)
        began = time.monotonic()
        results, report = _squares([2, 3, 4], jobs=2, policy=policy)
        assert results == [4, 9, 16]
        assert report.timeouts >= 1
        assert time.monotonic() - began < 30.0

    def test_corrupt_result_is_rejected_and_retried(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "corrupt@0")
        results, report = _squares(
            [2, 3], jobs=2, policy=RetryPolicy(backoff=0.0)
        )
        assert results == [4, 9]
        assert report.corrupt == 1
        assert report.retries == 1

    def test_best_effort_preserves_result_ordering(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@2#*")
        policy = RetryPolicy(max_retries=0, backoff=0.0, best_effort=True)
        results, report = _squares([2, 3, 4, 5, 6], jobs=2, policy=policy)
        assert results == [4, 9, None, 25, 36]
        assert [f.label for f in report.failures] == ["task4"]

    def test_failing_shard_does_not_orphan_workers(self, monkeypatch):
        """Regression: mid-dispatch abort must not leak pool processes."""
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@1#*")
        policy = RetryPolicy(max_retries=0, best_effort=False)
        with pytest.raises(FaultToleranceError):
            _squares([2, 3, 4, 5], jobs=2, policy=policy)
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, (
                f"leaked workers: {multiprocessing.active_children()}"
            )
            time.sleep(0.05)


# -- end-to-end: experiments under injection ----------------------------------


class TestExperimentFanout:
    def test_injected_faults_do_not_change_results(self, monkeypatch):
        specs = [
            ExperimentSpec(workload="compress", same_input=True),
            ExperimentSpec(workload="espresso", same_input=True),
        ]
        clean = run_experiments(specs, jobs=2)
        monkeypatch.setenv(faults.ENV_FAULTS, "crash@0")
        parallel.set_retry_policy(RetryPolicy(backoff=0.0))
        faulted = run_experiments(specs, jobs=2)
        report = parallel.last_fanout_report()
        assert report.crashes >= 1
        for clean_result, faulted_result in zip(clean, faulted):
            assert (
                faulted_result.ccdp.cache.miss_rate
                == clean_result.ccdp.cache.miss_rate
            )
            assert (
                faulted_result.original.cache.miss_rate
                == clean_result.original.cache.miss_rate
            )

    def test_degraded_shard_is_skipped_in_table(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "oom@1#*")
        parallel.set_retry_policy(
            RetryPolicy(max_retries=0, backoff=0.0, best_effort=True)
        )
        set_parallel_jobs(2)
        table = run_table2(programs=["compress", "espresso", "deltablue"])
        assert table.skipped == ["espresso"]
        assert [row.program for row in table.rows] == ["compress", "deltablue"]
        assert "skipped after retry exhaustion: espresso" in table.render()
        with pytest.raises(ShardFailedError):
            from repro.experiments.common import cached_experiment

            cached_experiment("espresso", same_input=True)


class TestPayloadGuard:
    """Fan-out payloads stay handle-sized; bulk data fails fast by name."""

    def test_experiment_specs_are_handle_sized(self):
        import pickle

        specs = [
            ExperimentSpec(workload=name, same_input=True)
            for name in ("compress", "espresso", "deltablue")
        ]
        for spec in specs:
            assert len(pickle.dumps(spec)) < 4096

    def test_oversized_payload_fails_fast_with_task_named(self):
        blob = b"x" * (parallel.MAX_TASK_PAYLOAD_BYTES + 1)
        with pytest.raises(parallel.TaskPayloadError, match="task-big"):
            parallel._check_payloads([(1,), (blob,)], ["task-small", "task-big"])

    def test_payload_sizes_are_observed(self):
        from repro.obs import Telemetry, use

        registry = Telemetry()
        with use(registry):
            parallel._check_payloads([(1,), (2, 3)], ["a", "b"])
        assert registry.counters["fanout.payload_bytes"] > 0
        assert registry.gauges["fanout.payload.max_bytes"] > 0

    def test_env_override_and_disable(self, monkeypatch):
        monkeypatch.setenv(parallel.MAX_TASK_PAYLOAD_ENV, "16")
        assert parallel.max_task_payload_bytes() == 16
        with pytest.raises(parallel.TaskPayloadError):
            parallel._check_payloads([("a" * 64,)], ["tiny-cap"])
        monkeypatch.setenv(parallel.MAX_TASK_PAYLOAD_ENV, "0")
        parallel._check_payloads([("a" * 64,)], ["disabled"])  # no raise
        monkeypatch.setenv(parallel.MAX_TASK_PAYLOAD_ENV, "junk")
        assert (
            parallel.max_task_payload_bytes() == parallel.MAX_TASK_PAYLOAD_BYTES
        )

    def test_pooled_fanout_rejects_bulk_data_before_spawning(self):
        blob = b"y" * (parallel.MAX_TASK_PAYLOAD_BYTES + 1)
        with pytest.raises(parallel.TaskPayloadError):
            parallel._resilient_map(
                [(blob,)], ["bulk"], _pool_square, _inline_square, jobs=2
            )
