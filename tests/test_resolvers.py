"""Unit tests for the placement address resolvers."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.core.placement_map import HeapDecision, PlacementMap
from repro.memory.layout import DATA_BASE, STACK_BASE, TEXT_BASE
from repro.naming.xor import xor_fold
from repro.runtime.resolvers import (
    CCDPResolver,
    NaturalResolver,
    RandomResolver,
)
from repro.trace.events import Category, ObjectInfo, STACK_OBJECT_ID


def global_info(obj_id, size, symbol, decl=0):
    return ObjectInfo(obj_id, Category.GLOBAL, size, symbol, decl)


def heap_info(obj_id, size):
    return ObjectInfo(obj_id, Category.HEAP, size, f"h#{obj_id}")


class TestNaturalResolver:
    def test_globals_sequential_in_declaration_order(self):
        resolver = NaturalResolver()
        resolver.on_object(global_info(1, 100, "a"))
        resolver.on_object(global_info(2, 50, "b"))
        assert resolver.address_of(1) == DATA_BASE
        assert resolver.address_of(2) == DATA_BASE + 104  # aligned

    def test_constants_in_text_segment(self):
        resolver = NaturalResolver()
        resolver.on_object(ObjectInfo(1, Category.CONST, 16, "c"))
        assert resolver.address_of(1) == TEXT_BASE

    def test_stack_at_default_base(self):
        resolver = NaturalResolver()
        assert resolver.address_of(STACK_OBJECT_ID) == STACK_BASE

    def test_heap_first_fit_reuses_lowest(self):
        resolver = NaturalResolver()
        resolver.on_alloc(heap_info(1, 32), ())
        resolver.on_alloc(heap_info(2, 32), ())
        first = resolver.address_of(1)
        resolver.on_free(1)
        resolver.on_alloc(heap_info(3, 16), ())
        assert resolver.address_of(3) == first

    def test_free_removes_mapping(self):
        resolver = NaturalResolver()
        resolver.on_alloc(heap_info(1, 32), ())
        resolver.on_free(1)
        with pytest.raises(KeyError):
            resolver.address_of(1)


class TestRandomResolver:
    def test_deterministic_given_seed(self):
        first = RandomResolver(seed=7)
        second = RandomResolver(seed=7)
        for resolver in (first, second):
            resolver.on_object(global_info(1, 64, "a"))
            resolver.on_alloc(heap_info(2, 32), ())
        assert first.address_of(1) == second.address_of(1)
        assert first.address_of(2) == second.address_of(2)

    def test_different_seeds_differ(self):
        first = RandomResolver(seed=1)
        second = RandomResolver(seed=2)
        for resolver in (first, second):
            for index in range(8):
                resolver.on_object(global_info(index + 1, 64, f"g{index}"))
        layouts = [
            tuple(r.address_of(i + 1) for i in range(8)) for r in (first, second)
        ]
        assert layouts[0] != layouts[1]

    def test_stack_stays_natural(self):
        # The paper randomizes globals and heap only.
        resolver = RandomResolver(seed=3)
        assert resolver.address_of(STACK_OBJECT_ID) == STACK_BASE

    def test_globals_remain_disjoint(self):
        resolver = RandomResolver(seed=5)
        sizes = {}
        for index in range(20):
            info = global_info(index + 1, 64 + index * 8, f"g{index}")
            resolver.on_object(info)
            sizes[info.obj_id] = info.size
        spans = sorted(
            (resolver.address_of(obj_id), resolver.address_of(obj_id) + size)
            for obj_id, size in sizes.items()
        )
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestCCDPResolver:
    def _placement(self) -> PlacementMap:
        config = CacheConfig(1024, 32, 1)
        placement = PlacementMap(cache_config=config)
        placement.data_base = DATA_BASE + 96
        placement.global_offsets = {"a": 0, "b": 512}
        placement.stack_base = STACK_BASE + 256
        name = xor_fold((0x10, 0x20, 0x30, 0x40))
        placement.heap_table[name] = HeapDecision(bin_tag=2, preferred_offset=128)
        return placement

    def test_globals_at_placed_addresses(self):
        resolver = CCDPResolver(self._placement())
        resolver.on_object(global_info(1, 64, "b"))
        assert resolver.address_of(1) == DATA_BASE + 96 + 512

    def test_unknown_global_goes_to_fallback(self):
        resolver = CCDPResolver(self._placement())
        resolver.on_object(global_info(1, 64, "unseen"))
        assert resolver.address_of(1) > DATA_BASE + 96 + 512

    def test_stack_at_placed_base(self):
        resolver = CCDPResolver(self._placement())
        assert resolver.address_of(STACK_OBJECT_ID) == STACK_BASE + 256

    def test_heap_honours_preferred_offset(self):
        resolver = CCDPResolver(self._placement())
        resolver.on_alloc(heap_info(5, 48), (0x10, 0x20, 0x30, 0x40))
        assert resolver.address_of(5) % 1024 == 128

    def test_unknown_name_uses_default_free_list(self):
        resolver = CCDPResolver(self._placement())
        resolver.on_alloc(heap_info(5, 48), (0x99,))
        resolver.on_alloc(heap_info(6, 48), (0x99,))
        # Default bin: sequential allocations land near each other.
        assert abs(resolver.address_of(6) - resolver.address_of(5)) < 4096

    def test_free_and_reallocate(self):
        resolver = CCDPResolver(self._placement())
        resolver.on_alloc(heap_info(5, 48), (0x10, 0x20, 0x30, 0x40))
        addr = resolver.address_of(5)
        resolver.on_free(5)
        resolver.on_alloc(heap_info(6, 48), (0x10, 0x20, 0x30, 0x40))
        # Same name, preferred offset satisfied again (likely same spot).
        assert resolver.address_of(6) % 1024 == 128
        assert addr % 1024 == 128


class TestCompactHeapResolver:
    def test_compact_heap_uses_first_fit(self):
        from repro.cache.config import CacheConfig
        from repro.core.placement_map import PlacementMap

        placement = PlacementMap(cache_config=CacheConfig(1024, 32, 1))
        placement.data_base = DATA_BASE
        placement.stack_base = STACK_BASE
        resolver = CCDPResolver(placement, compact_heap=True)
        resolver.on_alloc(heap_info(1, 32), (0x1,))
        resolver.on_alloc(heap_info(2, 32), (0x1,))
        first = resolver.address_of(1)
        second = resolver.address_of(2)
        assert second == first + 32  # packed, no bins or pads
        resolver.on_free(1)
        resolver.on_alloc(heap_info(3, 16), (0x1,))
        assert resolver.address_of(3) == first  # first-fit reuse
