"""CLI surface of ``repro sweep``: parse-time and plan-time validation."""

from __future__ import annotations

import json

import pytest
from argparse import ArgumentTypeError

from repro.cli import _parse_int_list, build_parser, main


class TestParseIntList:
    def test_parses_comma_separated_values(self):
        assert _parse_int_list("4096,8192") == (4096, 8192)
        assert _parse_int_list("1") == (1,)
        assert _parse_int_list("1,2,") == (1, 2)

    def test_rejects_non_integers(self):
        with pytest.raises(ArgumentTypeError, match="comma-separated integers"):
            _parse_int_list("4096,huge")

    def test_rejects_empty(self):
        with pytest.raises(ArgumentTypeError, match="at least one"):
            _parse_int_list(",")


class TestParseTimeValidation:
    def test_bad_geometry_string_rejected_by_argparse(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["sweep", "--geometries", "8192:48:1"])
        assert excinfo.value.code == 2
        assert "line_size" in capsys.readouterr().err

    def test_bad_cost_model_rejected_by_argparse(self):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["sweep", "--cost-model", "quantum"])
        assert excinfo.value.code == 2


class TestPlanTimeValidation:
    def test_indivisible_size_assoc_combo_exits_2(self, capsys):
        assert main(["sweep", "--sizes", "8192", "--assoc", "3"]) == 2
        err = capsys.readouterr().err
        assert "invalid geometry 8192:32:3" in err

    def test_unknown_workload_exits_2(self, capsys):
        rc = main(
            ["sweep", "--sizes", "8192", "--assoc", "1",
             "--workloads", "doom"]
        )
        assert rc == 2
        assert "unknown workloads: doom" in capsys.readouterr().err


class TestEndToEnd:
    def test_single_cell_sweep_writes_report(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        rc = main(
            ["sweep", "--sizes", "8192", "--assoc", "1",
             "--workloads", "layout-stress", "-o", str(out)]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["failed"] == 0
        assert len(payload["cells"]) == 1
        cell = payload["cells"][0]
        assert cell["workload"] == "layout-stress"
        assert cell["cost_model"] == "direct"
        assert cell["verdict"] == "win"
        stdout = capsys.readouterr().out
        assert "sweep: 1 cells" in stdout
        assert f"sweep report written to {out}" in stdout
        assert "[sched]" in stdout
