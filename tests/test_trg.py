"""Unit + property tests for the TRG recency-queue builder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiling.trg import TRGBuilder, entity_affinity


def edge(builder: TRGBuilder, a, b) -> int:
    key = (a, b) if a <= b else (b, a)
    return builder.edges.get(key, 0)


class TestQueueBehaviour:
    def test_first_reference_creates_no_edges(self):
        builder = TRGBuilder(queue_threshold=1024, chunk_size=256)
        builder.observe(1, 0, 256)
        assert not builder.edges

    def test_interleaved_references_create_edges(self):
        builder = TRGBuilder(queue_threshold=1024, chunk_size=256)
        builder.observe(1, 0, 256)   # A
        builder.observe(2, 0, 256)   # B
        builder.observe(1, 0, 256)   # A again: B intervened
        assert edge(builder, (1, 0), (2, 0)) == 1

    def test_repeated_same_chunk_is_free(self):
        builder = TRGBuilder(queue_threshold=1024, chunk_size=256)
        for _ in range(100):
            builder.observe(1, 0, 256)
        assert not builder.edges
        assert builder.queue_length == 1

    def test_edge_weight_counts_each_intervention(self):
        builder = TRGBuilder(queue_threshold=4096, chunk_size=256)
        for _ in range(5):
            builder.observe(1, 0, 256)
            builder.observe(2, 0, 256)
        # A B A B ... (10 references): the first two create no edges,
        # each of the remaining 8 sees the other in front -> weight 8.
        assert edge(builder, (1, 0), (2, 0)) == 8

    def test_all_entries_in_front_get_edges(self):
        builder = TRGBuilder(queue_threshold=4096, chunk_size=256)
        builder.observe(1, 0, 256)
        builder.observe(2, 0, 256)
        builder.observe(3, 0, 256)
        builder.observe(1, 0, 256)  # 3 and 2 are in front of 1
        assert edge(builder, (1, 0), (2, 0)) == 1
        assert edge(builder, (1, 0), (3, 0)) == 1
        assert edge(builder, (2, 0), (3, 0)) == 0

    def test_entries_behind_get_no_edges(self):
        builder = TRGBuilder(queue_threshold=4096, chunk_size=256)
        builder.observe(2, 0, 256)
        builder.observe(1, 0, 256)
        builder.observe(3, 0, 256)
        builder.observe(1, 0, 256)  # only 3 in front; 2 is behind
        assert edge(builder, (1, 0), (3, 0)) == 1
        assert edge(builder, (1, 0), (2, 0)) == 0

    def test_eviction_at_threshold(self):
        builder = TRGBuilder(queue_threshold=512, chunk_size=256)
        builder.observe(1, 0, 256)
        builder.observe(2, 0, 256)
        builder.observe(3, 0, 256)  # evicts entity 1
        assert builder.queue_length == 2
        assert builder.queued_bytes <= 512
        builder.observe(1, 0, 256)  # back in, but no edges (was evicted)
        assert edge(builder, (1, 0), (2, 0)) == 0

    def test_small_entities_account_their_own_size(self):
        builder = TRGBuilder(queue_threshold=64, chunk_size=256)
        for eid in range(8):
            builder.observe(eid, 0, 8)
        assert builder.queue_length == 8  # 64 bytes total, all fit

    def test_distinct_chunks_of_one_entity_relate(self):
        builder = TRGBuilder(queue_threshold=4096, chunk_size=256)
        builder.observe(1, 0, 256)
        builder.observe(1, 3, 256)
        builder.observe(1, 0, 256)
        assert edge(builder, (1, 0), (1, 3)) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TRGBuilder(queue_threshold=0)
        with pytest.raises(ValueError):
            TRGBuilder(queue_threshold=10, chunk_size=0)


class TestEntityAffinity:
    def test_collapses_chunk_edges(self):
        edges = {
            ((1, 0), (2, 0)): 5,
            ((1, 1), (2, 3)): 7,
            ((1, 0), (3, 0)): 2,
        }
        affinity = entity_affinity(edges)
        assert affinity[(1, 2)] == 12
        assert affinity[(1, 3)] == 2

    def test_ignores_self_edges(self):
        edges = {((1, 0), (1, 5)): 9}
        assert entity_affinity(edges) == {}


# -- properties ----------------------------------------------------------------

refs = st.lists(
    st.tuples(st.integers(1, 6), st.integers(0, 3)), min_size=0, max_size=200
)


@given(refs, st.integers(256, 4096))
@settings(max_examples=60, deadline=None)
def test_queue_never_exceeds_threshold(stream, threshold):
    builder = TRGBuilder(queue_threshold=threshold, chunk_size=256)
    for eid, chunk in stream:
        builder.observe(eid, chunk, 256)
        assert builder.queued_bytes <= max(threshold, 256)


@given(refs)
@settings(max_examples=60, deadline=None)
def test_edge_weights_positive_and_keys_canonical(stream):
    builder = TRGBuilder(queue_threshold=2048, chunk_size=256)
    for eid, chunk in stream:
        builder.observe(eid, chunk, 256)
    for (a, b), weight in builder.edges.items():
        assert weight > 0
        assert a <= b


@given(refs)
@settings(max_examples=30, deadline=None)
def test_unbounded_queue_weight_equals_stack_distance_count(stream):
    """With a huge threshold, edge(A,B) counts exactly the times B sat in
    front of A (and vice versa) at a re-reference — a reuse-interval
    property we can recompute independently."""
    builder = TRGBuilder(queue_threshold=10**9, chunk_size=256)
    expected: dict[tuple, int] = {}
    order: list[tuple] = []
    for eid, chunk in stream:
        key = (eid, chunk)
        if order and order[0] == key:
            continue
        if key in order:
            position = order.index(key)
            for other in order[:position]:
                pair = (key, other) if key <= other else (other, key)
                expected[pair] = expected.get(pair, 0) + 1
            order.remove(key)
        order.insert(0, key)
        builder.observe(eid, chunk, 256)
    assert builder.edges == expected
