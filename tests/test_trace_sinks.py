"""Unit tests for trace sinks (multi-sink fan-out, recording, replay)."""

from __future__ import annotations

from repro.trace.events import Category, ObjectInfo
from repro.trace.sinks import MultiSink, RecordingSink, TraceSink
from repro.trace.stats import StatsSink


def _emit_sample(sink: TraceSink) -> None:
    sink.on_object(ObjectInfo(1, Category.GLOBAL, 64, "g"))
    sink.on_access(1, 0, 4, False, Category.GLOBAL)
    info = ObjectInfo(2, Category.HEAP, 32, "h")
    sink.on_alloc(info, (0x10, 0x20))
    sink.on_access(2, 8, 4, True, Category.HEAP)
    sink.on_free(2)
    sink.on_stack_depth(96)
    sink.on_end()


class TestBaseSink:
    def test_all_hooks_are_noops(self):
        # Must not raise anywhere.
        _emit_sample(TraceSink())


class TestMultiSink:
    def test_fans_out_to_all_children(self):
        first, second = RecordingSink(), RecordingSink()
        _emit_sample(MultiSink([first, second]))
        assert len(first.events) == len(second.events) == 4
        assert first.ended and second.ended

    def test_preserves_event_order(self):
        child = RecordingSink()
        _emit_sample(MultiSink([child]))
        kinds = [type(e).__name__ for e in child.events]
        assert kinds == ["Access", "Alloc", "Access", "Free"]


class TestRecordingSink:
    def test_records_objects_and_stack_depth(self):
        sink = RecordingSink()
        _emit_sample(sink)
        assert len(sink.objects) == 1
        assert sink.max_stack_depth == 96

    def test_replay_reproduces_stats(self):
        recorder = RecordingSink()
        _emit_sample(recorder)
        direct = StatsSink()
        _emit_sample(direct)
        replayed = StatsSink()
        recorder.replay(replayed)
        assert replayed.stats.memory_refs == direct.stats.memory_refs
        assert replayed.stats.alloc_count == direct.stats.alloc_count
        assert replayed.stats.max_stack_depth == direct.stats.max_stack_depth

    def test_replay_delivers_alloc_return_addresses(self):
        recorder = RecordingSink()
        _emit_sample(recorder)
        captured = []

        class Capture(TraceSink):
            def on_alloc(self, info, return_addresses):
                captured.append(return_addresses)

        recorder.replay(Capture())
        assert captured == [(0x10, 0x20)]
