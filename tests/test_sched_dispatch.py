"""Longest-estimated-first dispatch: cost priors and fan-out order.

One heavy shard dispatched last serializes a whole fan-out behind it.
These tests pin the ordering contract at both layers: the cost priors
rank programs/stages sensibly, and both coarse fan-out entry points
(:func:`run_experiments`, :func:`run_placements`) hand their cold
remainder to the dispatcher longest-estimated-first.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import clear_cache
from repro.runtime import parallel
from repro.runtime.faults import FanoutReport
from repro.runtime.parallel import ExperimentSpec, PlacementSpec
from repro.sched import costs


@pytest.fixture(autouse=True)
def _fresh(tmp_path, monkeypatch):
    # Keep the priors static: benchmark history is read from the cwd.
    monkeypatch.chdir(tmp_path)
    costs.refresh_history()
    clear_cache()
    yield
    costs.refresh_history()
    clear_cache()


class TestCostPriors:
    def test_program_weights_rank_trace_length(self):
        assert costs.program_weight("compress") > costs.program_weight(
            "espresso"
        ) > costs.program_weight("deltablue")

    def test_unknown_program_gets_neutral_weight(self):
        assert costs.program_weight("mystery") == pytest.approx(1.0)

    def test_job_cost_scales_stage_by_program(self):
        assert costs.job_cost("profile", "compress") > costs.job_cost(
            "profile", "deltablue"
        )
        assert costs.job_cost("profile", "espresso") > costs.job_cost(
            "place", "espresso"
        )

    def test_dispatch_order_puts_heaviest_first(self):
        specs = [
            ExperimentSpec(workload="deltablue"),
            ExperimentSpec(workload="compress"),
            ExperimentSpec(workload="espresso"),
        ]
        order = costs.dispatch_order(specs)
        assert [specs[i].workload for i in order] == [
            "compress",
            "espresso",
            "deltablue",
        ]

    def test_history_overrides_static_weights(self, tmp_path):
        import json

        (tmp_path / costs.PLACEMENT_HISTORY).write_text(
            json.dumps(
                {
                    "arms": {
                        "array": {
                            "per_program_s": {
                                "deltablue": 9.0,
                                "compress": 0.3,
                            }
                        }
                    }
                }
            )
        )
        costs.refresh_history()
        assert costs.program_weight("deltablue") > costs.program_weight(
            "compress"
        )


class TestFanoutOrder:
    def _capture_map(self, monkeypatch):
        captured = {}

        def fake_map(items, labels, worker, inline, jobs=1, policy=None, **kw):
            captured["labels"] = list(labels)
            return [None] * len(items), FanoutReport(
                total=len(items), completed=len(items)
            )

        monkeypatch.setattr(parallel, "_resilient_map", fake_map)
        return captured

    def test_run_experiments_dispatches_longest_first(self, monkeypatch):
        captured = self._capture_map(monkeypatch)
        specs = [
            ExperimentSpec(workload="deltablue"),
            ExperimentSpec(workload="compress"),
            ExperimentSpec(workload="espresso"),
        ]
        parallel.run_experiments(specs, jobs=2)
        assert captured["labels"] == ["compress", "espresso", "deltablue"]

    def test_run_placements_dispatches_longest_first(self, monkeypatch):
        captured = self._capture_map(monkeypatch)
        specs = [
            PlacementSpec(workload="espresso"),
            PlacementSpec(workload="compress"),
        ]
        parallel.run_placements(specs, jobs=2)
        assert captured["labels"] == ["compress", "espresso"]
