"""Unit tests for the trace event vocabulary."""

from __future__ import annotations

import pytest

from repro.trace.events import (
    Access,
    Alloc,
    Category,
    CATEGORY_ORDER,
    Free,
    ObjectInfo,
    STACK_OBJECT_ID,
)


class TestCategory:
    def test_four_categories(self):
        assert len(Category) == 4

    def test_labels_match_paper_tables(self):
        assert Category.STACK.label == "Stack"
        assert Category.GLOBAL.label == "Global"
        assert Category.HEAP.label == "Heap"
        assert Category.CONST.label == "Const"

    def test_category_order_is_paper_column_order(self):
        assert CATEGORY_ORDER == (
            Category.STACK,
            Category.GLOBAL,
            Category.HEAP,
            Category.CONST,
        )

    def test_stack_object_id_reserved(self):
        assert STACK_OBJECT_ID == 0


class TestObjectInfo:
    def test_fields(self):
        info = ObjectInfo(
            obj_id=3,
            category=Category.GLOBAL,
            size=128,
            symbol="table",
            decl_index=2,
        )
        assert info.obj_id == 3
        assert info.size == 128
        assert info.alloc_name is None

    def test_frozen(self):
        info = ObjectInfo(1, Category.HEAP, 64, "h", alloc_name=0xBEEF)
        with pytest.raises(AttributeError):
            info.size = 99

    def test_heap_object_carries_alloc_name(self):
        info = ObjectInfo(1, Category.HEAP, 64, "h", alloc_name=0xBEEF)
        assert info.alloc_name == 0xBEEF


class TestEventShapes:
    def test_access_event(self):
        event = Access(obj_id=1, offset=8, size=4, is_store=True,
                       category=Category.GLOBAL)
        assert event.is_store
        assert event.offset == 8

    def test_alloc_event_defaults(self):
        info = ObjectInfo(5, Category.HEAP, 32, "h#5")
        event = Alloc(info=info)
        assert event.return_addresses == ()

    def test_free_event(self):
        assert Free(obj_id=9).obj_id == 9
