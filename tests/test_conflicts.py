"""Tests for eviction tracking and the conflict debugger."""

from __future__ import annotations

from repro.analysis.conflicts import (
    conflict_report,
    measured_conflicts,
    predicted_conflicts,
    total_cross_object_evictions,
)
from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator
from repro.profiling.profile_data import Entity, Profile
from repro.trace.events import Category


def make_tracking_sim() -> CacheSimulator:
    return CacheSimulator(CacheConfig(1024, 32, 1), track_evictions=True)


class TestEvictionTracking:
    def test_records_evictor_victim_pairs(self):
        sim = make_tracking_sim()
        sim.access(0, 4, 1, Category.GLOBAL)
        sim.access(1024, 4, 2, Category.GLOBAL)   # evicts obj 1's block
        assert sim.evictions == {(2, 1): 1}

    def test_pingpong_accumulates_both_directions(self):
        sim = make_tracking_sim()
        for _ in range(5):
            sim.access(0, 4, 1, Category.GLOBAL)
            sim.access(1024, 4, 2, Category.GLOBAL)
        assert sim.evictions[(2, 1)] == 5
        assert sim.evictions[(1, 2)] == 4

    def test_self_eviction_recorded(self):
        sim = make_tracking_sim()
        sim.access(0, 4, 7, Category.GLOBAL)
        sim.access(1024, 4, 7, Category.GLOBAL)
        assert sim.evictions == {(7, 7): 1}

    def test_compulsory_misses_do_not_count(self):
        sim = make_tracking_sim()
        sim.access(0, 4, 1, Category.GLOBAL)
        sim.access(32, 4, 2, Category.GLOBAL)  # different set, no victim
        assert sim.evictions == {}

    def test_disabled_by_default(self):
        sim = CacheSimulator(CacheConfig(1024, 32, 1))
        sim.access(0, 4, 1, Category.GLOBAL)
        sim.access(1024, 4, 2, Category.GLOBAL)
        assert sim.evictions == {}

    def test_total_cross_object_excludes_self(self):
        sim = make_tracking_sim()
        sim.access(0, 4, 7, Category.GLOBAL)
        sim.access(1024, 4, 7, Category.GLOBAL)   # self
        sim.access(2048, 4, 8, Category.GLOBAL)   # cross
        assert total_cross_object_evictions(sim) == 1


class TestConflictRankings:
    def _profile(self) -> Profile:
        profile = Profile(chunk_size=256)
        profile.entities[1] = Entity(1, Category.GLOBAL, "g:hot_a", size=64)
        profile.entities[2] = Entity(2, Category.GLOBAL, "g:hot_b", size=64)
        profile.entities[3] = Entity(3, Category.GLOBAL, "g:cold", size=64)
        profile.trg = {
            ((1, 0), (2, 0)): 100,
            ((1, 0), (3, 0)): 2,
        }
        return profile

    def test_predicted_ranked_by_affinity(self):
        pairs = predicted_conflicts(self._profile())
        assert pairs[0].first == "g:hot_a"
        assert pairs[0].second == "g:hot_b"
        assert pairs[0].weight == 100
        assert pairs[1].weight == 2

    def test_predicted_respects_top(self):
        assert len(predicted_conflicts(self._profile(), top=1)) == 1

    def test_measured_symmetrizes(self):
        sim = make_tracking_sim()
        for _ in range(3):
            sim.access(0, 4, 1, Category.GLOBAL)
            sim.access(1024, 4, 2, Category.GLOBAL)
        pairs = measured_conflicts(sim, labels={1: "a", 2: "b"})
        assert pairs[0].weight == 5  # 3 + 2, symmetrized
        assert {pairs[0].first, pairs[0].second} == {"a", "b"}

    def test_measured_skips_self_pairs(self):
        sim = make_tracking_sim()
        sim.access(0, 4, 7, Category.GLOBAL)
        sim.access(1024, 4, 7, Category.GLOBAL)
        assert measured_conflicts(sim) == []

    def test_render_and_report(self):
        sim_before = make_tracking_sim()
        sim_before.access(0, 4, 1, Category.GLOBAL)
        sim_before.access(1024, 4, 2, Category.GLOBAL)
        sim_after = make_tracking_sim()
        text = conflict_report(self._profile(), sim_before, sim_after)
        assert "Predicted" in text
        assert "original placement" in text
        assert "CCDP placement" in text
        assert "g:hot_a" in text
