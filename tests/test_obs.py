"""The observability subsystem: spans, counters, reports, invariants."""

from __future__ import annotations

import json

import pytest

from repro.cache.simulator import CacheStats
from repro.obs import invariants
from repro.obs.report import RunReport, run_report
from repro.obs.telemetry import (
    PEAK_RSS_GAUGE,
    Span,
    Telemetry,
    count,
    current,
    gauge,
    span,
    use,
)
from repro.core.placement_map import PlacementStats
from repro.profiling.serialize import placement_from_dict, placement_to_dict
from repro.runtime.driver import build_placement, run_experiment
from repro.trace.events import Category


class TestTelemetry:
    def test_span_nesting_builds_a_tree(self):
        registry = Telemetry()
        with registry.span("outer"):
            with registry.span("inner.a"):
                pass
            with registry.span("inner.b"):
                pass
        assert [root.name for root in registry.roots] == ["outer"]
        outer = registry.roots[0]
        assert [child.name for child in outer.children] == ["inner.a", "inner.b"]
        assert outer.seconds >= sum(c.seconds for c in outer.children)

    def test_reentered_span_name_accumulates_separately(self):
        registry = Telemetry()
        for _ in range(3):
            with registry.span("work"):
                pass
        assert len(registry.roots) == 3

    def test_counters_are_monotonic_and_gauges_last_write(self):
        registry = Telemetry()
        registry.count("events", 5)
        registry.count("events", 7)
        registry.gauge("ratio", 0.5)
        registry.gauge("ratio", 0.25)
        assert registry.counters["events"] == 12
        assert registry.gauges["ratio"] == 0.25

    def test_free_functions_are_noops_without_registry(self):
        assert current() is None
        count("orphan", 3)
        gauge("orphan", 1.0)
        with span("orphan"):
            pass  # must not raise and must not record anywhere

    def test_free_functions_route_to_installed_registry(self):
        registry = Telemetry()
        with use(registry):
            assert current() is registry
            count("hits", 2)
            with span("timed"):
                gauge("depth", 4.0)
        assert current() is None
        assert registry.counters == {"hits": 2}
        # Span exits sample the peak-RSS high-water mark as a gauge.
        assert registry.gauges.pop(PEAK_RSS_GAUGE, 0) >= 0
        assert registry.gauges == {"depth": 4.0}
        assert registry.find("timed") is not None

    def test_use_restores_previous_registry(self):
        first, second = Telemetry(), Telemetry()
        with use(first):
            with use(second):
                count("n")
            count("n")
        assert second.counters == {"n": 1}
        assert first.counters == {"n": 1}

    def test_round_trip_through_dict(self):
        registry = Telemetry()
        with registry.span("root", workload="toy"):
            with registry.span("child"):
                pass
        registry.count("edges", 9)
        registry.gauge("load", 1.5)
        data = json.loads(json.dumps(registry.to_dict()))
        rebuilt = Span.from_dict(data["spans"][0])
        assert rebuilt.name == "root"
        assert rebuilt.meta == {"workload": "toy"}
        assert rebuilt.find("child") is not None
        assert data["counters"] == {"edges": 9}
        assert data["gauges"].pop(PEAK_RSS_GAUGE, 0) >= 0
        assert data["gauges"] == {"load": 1.5}

    def test_gauge_max_is_a_high_water_mark(self):
        registry = Telemetry()
        registry.gauge_max("peak", 5.0)
        registry.gauge_max("peak", 3.0)
        assert registry.gauges["peak"] == 5.0
        registry.gauge_max("peak", 9.0)
        assert registry.gauges["peak"] == 9.0

    def test_peak_rss_sampling_is_positive_and_monotonic(self):
        from repro.obs import peak_rss_bytes

        first = peak_rss_bytes()
        assert first > 0
        assert peak_rss_bytes() >= first

    def test_merge_child_maxes_peak_rss_instead_of_overwriting(self):
        parent, child = Telemetry(), Telemetry()
        parent.gauge_max(PEAK_RSS_GAUGE, 500.0)
        child.gauge(PEAK_RSS_GAUGE, 100.0)
        child.gauge("worker.peak_rss", 250.0)
        child.gauge("ratio", 0.5)
        parent.merge_child(child.to_dict(), label="worker[0]")
        # A smaller child peak must not clobber the parent's high water.
        assert parent.gauges[PEAK_RSS_GAUGE] == 500.0
        assert parent.gauges["worker.peak_rss"] == 250.0
        assert parent.gauges["ratio"] == 0.5
        bigger = Telemetry()
        bigger.gauge(PEAK_RSS_GAUGE, 900.0)
        parent.merge_child(bigger.to_dict(), label="worker[1]")
        assert parent.gauges[PEAK_RSS_GAUGE] == 900.0

    def test_merge_child_sums_counters_and_wraps_spans(self):
        parent, child = Telemetry(), Telemetry()
        parent.count("events", 10)
        with child.span("run"):
            pass
        child.count("events", 32)
        parent.merge_child(child.to_dict(), label="worker[0]")
        assert parent.counters["events"] == 42
        wrapper = parent.find("worker[0]")
        assert wrapper is not None
        assert [c.name for c in wrapper.children] == ["run"]

    def test_render_mentions_spans_and_counters(self):
        registry = Telemetry()
        with registry.span("alpha"):
            with registry.span("beta"):
                pass
        registry.count("gamma", 3)
        text = registry.render()
        assert "alpha" in text and "beta" in text
        assert "gamma" in text and "ms" in text


class TestInvariants:
    def _consistent_stats(self) -> CacheStats:
        stats = CacheStats()
        stats.accesses = 10
        stats.misses = 4
        stats.accesses_by_category[Category.GLOBAL] = 6
        stats.accesses_by_category[Category.STACK] = 4
        stats.misses_by_category[Category.GLOBAL] = 3
        stats.misses_by_category[Category.STACK] = 1
        stats.accesses_by_object = {1: 6, 2: 4}
        stats.misses_by_object = {1: 3, 2: 1}
        return stats

    def test_consistent_stats_pass(self):
        invariants.check_cache_stats(self._consistent_stats())

    def test_category_leak_is_caught(self):
        stats = self._consistent_stats()
        stats.misses_by_category[Category.HEAP] = 1  # orphan miss
        with pytest.raises(invariants.InvariantError, match="per-category"):
            invariants.check_cache_stats(stats, context="unit")

    def test_object_leak_is_caught(self):
        stats = self._consistent_stats()
        stats.misses_by_object[2] = 2
        with pytest.raises(invariants.InvariantError, match="per-object"):
            invariants.check_cache_stats(stats)

    def test_three_cs_must_readd_when_present(self):
        stats = self._consistent_stats()
        stats.compulsory, stats.capacity, stats.conflict = 2, 1, 0
        with pytest.raises(invariants.InvariantError, match="three-Cs"):
            invariants.check_cache_stats(stats)
        stats.conflict = 1
        invariants.check_cache_stats(stats)

    def test_maybe_check_respects_global_switch(self):
        stats = self._consistent_stats()
        stats.misses_by_category[Category.HEAP] = 1
        invariants.set_enabled(False)
        try:
            invariants.maybe_check_cache_stats(stats)  # disabled: silent
        finally:
            invariants.set_enabled(True)
        with pytest.raises(invariants.InvariantError):
            invariants.maybe_check_cache_stats(stats)

    def test_invariant_error_is_an_assertion(self):
        assert issubclass(invariants.InvariantError, AssertionError)

    def test_cache_stats_check_conservation_method(self):
        stats = self._consistent_stats()
        stats.check_conservation()
        stats.misses_by_category[Category.HEAP] = 1
        with pytest.raises(invariants.InvariantError):
            stats.check_conservation()


class TestInstrumentedPipeline:
    def test_placer_phase_spans_and_seconds(self, toy_workload, small_cache):
        registry = Telemetry()
        with use(registry):
            _profile, placement = build_placement(
                toy_workload, cache_config=small_cache
            )
        place_span = registry.find("place")
        assert place_span is not None
        phase_names = [child.name for child in place_span.children]
        for phase in range(9):
            assert f"place.phase{phase}" in phase_names
        merge = registry.find("place.phase6")
        stats = placement.stats
        assert stats.place_seconds == place_span.seconds > 0
        assert stats.merge_loop_seconds == merge.seconds
        assert stats.merge_loop_seconds <= stats.place_seconds
        assert registry.counters["place.merges"] == stats.merges
        assert registry.counters["place.anchors"] == stats.anchors
        assert registry.counters["place.conflict_scans"] > 0
        assert (
            registry.counters["place.merge_loop.iterations"]
            >= stats.merges + registry.counters["place.merge_loop.stale_skips"]
        )

    def test_seconds_populated_without_a_registry(self, toy_workload, small_cache):
        assert current() is None
        _profile, placement = build_placement(
            toy_workload, cache_config=small_cache
        )
        assert placement.stats.place_seconds > 0
        assert 0 < placement.stats.merge_loop_seconds <= placement.stats.place_seconds

    def test_experiment_counters_reconcile_with_stats(
        self, toy_workload, small_cache
    ):
        registry = Telemetry()
        with use(registry):
            result = run_experiment(toy_workload, cache_config=small_cache)
        # Both measurement arms stream the same test trace through the
        # batched engine chunk-wise: the sim.events counter is the total
        # event count across arms and must reconcile exactly with the
        # per-arm access totals... which per-category sums must also hit.
        total_accesses = (
            result.original.cache.accesses + result.ccdp.cache.accesses
        )
        events = registry.counters["sim.events"]
        # Multi-block references count one access per touched block, so
        # accesses >= events, with equality when no access straddles lines.
        assert events <= total_accesses
        for arm in (result.original.cache, result.ccdp.cache):
            assert sum(arm.misses_by_category.values()) == arm.misses
            assert sum(arm.accesses_by_category.values()) == arm.accesses
        assert registry.counters["profile.events"] > 0
        assert registry.counters["profile.trg_edges"] > 0
        assert registry.find("measure.original") is not None
        assert registry.find("measure.ccdp") is not None
        assert registry.find("simulate") is not None

    def test_scalar_engine_reports_same_span_shape(self, toy_workload, small_cache):
        registry = Telemetry()
        with use(registry):
            run_experiment(
                toy_workload, cache_config=small_cache, engine="scalar"
            )
        assert registry.find("place.phase6") is not None
        assert registry.find("simulate") is not None


class TestRunReport:
    def test_run_report_end_to_end(self, small_cache):
        report = run_report("espresso", cache_config=small_cache)
        data = report.to_dict()
        assert data["workload"] == "espresso"
        for summary in data["simulation"].values():
            assert (
                sum(summary["misses_by_category"].values()) == summary["misses"]
            )
        assert data["trace"]["loads"] + data["trace"]["stores"] == sum(
            data["trace"]["refs_by_category"].values()
        )
        assert data["telemetry"]["spans"]

    def test_report_from_experiment(self, toy_workload, small_cache):
        registry = Telemetry()
        with use(registry):
            result = run_experiment(toy_workload, cache_config=small_cache)
        report = RunReport.from_experiment(result, registry)
        data = report.to_dict()
        assert data["kind"] == "ccdp-run-report"
        for arm, summary in data["simulation"].items():
            assert (
                sum(summary["misses_by_category"].values()) == summary["misses"]
            ), arm
            assert (
                sum(summary["accesses_by_category"].values())
                == summary["accesses"]
            ), arm
        assert data["invariants"]["miss_attribution_conserved"] is True
        assert data["telemetry"]["counters"]
        parsed = json.loads(report.to_json())
        assert parsed == data
        rendered = report.render()
        assert "miss attribution" in rendered
        assert "place.phase6" in rendered
        assert "peak RSS" in rendered

    def test_report_renders_scheduler_counters(self, toy_workload, small_cache):
        registry = Telemetry()
        with use(registry):
            result = run_experiment(toy_workload, cache_config=small_cache)
            registry.count("sched.dedup", 3)
            registry.count("sched.pruned", 2)
            registry.gauge("sched.critical_path_seconds", 1.25)
        report = RunReport.from_experiment(result, registry)
        rendered = report.render()
        assert "scheduler: dedup=3 pruned=2 critical_path=1.25s" in rendered

    def test_run_report_survives_a_fully_warm_store(self, tmp_path, small_cache):
        from repro.store import ArtifactStore, use_store

        with use_store(ArtifactStore(tmp_path)):
            cold = run_report("espresso", cache_config=small_cache)
            warm = run_report("espresso", cache_config=small_cache)
        assert warm.to_dict()["trace"] == cold.to_dict()["trace"]
        assert warm.to_dict()["simulation"] == cold.to_dict()["simulation"]

    def test_report_rejects_leaky_stats(self, toy_workload, small_cache):
        result = run_experiment(toy_workload, cache_config=small_cache)
        result.ccdp.cache.misses_by_category[Category.HEAP] += 1
        with pytest.raises(invariants.InvariantError):
            RunReport.from_experiment(result)


class TestPlacementStatsFieldExclusion:
    """Satellite regression: timing fields stay out of equality/serialization."""

    def test_seconds_fields_do_not_affect_equality(self):
        fast = PlacementStats(merges=3, place_seconds=0.001, merge_loop_seconds=0.0005)
        slow = PlacementStats(merges=3, place_seconds=9.9, merge_loop_seconds=4.4)
        different = PlacementStats(merges=4)
        assert fast == slow
        assert fast != different

    def test_seconds_fields_are_not_serialized(self, toy_workload, small_cache):
        _profile, placement = build_placement(
            toy_workload, cache_config=small_cache
        )
        assert placement.stats.place_seconds > 0
        data = placement_to_dict(placement)
        assert "place_seconds" not in data["stats"]
        assert "merge_loop_seconds" not in data["stats"]
        restored = placement_from_dict(json.loads(json.dumps(data)))
        assert restored.stats.place_seconds == 0.0
        assert restored.stats.merge_loop_seconds == 0.0
        assert restored.stats == placement.stats

    def test_engine_parity_unaffected_by_timing(self, toy_workload, small_cache):
        """Array and scalar placements compare equal despite timing skew."""
        results = {}
        for engine in ("array", "scalar"):
            _profile, placement = build_placement(
                toy_workload, cache_config=small_cache, placement_engine=engine
            )
            results[engine] = placement
        assert results["array"].stats == results["scalar"].stats
        assert results["array"].stats.place_seconds != 0.0
        assert results["scalar"].stats.place_seconds != 0.0
