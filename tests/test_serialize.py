"""Tests for profile / placement-map JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.algorithm import CCDPPlacer
from repro.profiling.serialize import (
    SerializationError,
    load_placement,
    load_profile,
    placement_from_dict,
    placement_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_placement,
    save_profile,
)
from repro.runtime.driver import measure, profile_workload
from repro.runtime.resolvers import CCDPResolver


@pytest.fixture
def profile(toy_workload, small_cache):
    return profile_workload(toy_workload, toy_workload.train_input, small_cache)


class TestProfileRoundTrip:
    def test_entities_survive(self, profile):
        restored = profile_from_dict(profile_to_dict(profile))
        assert set(restored.entities) == set(profile.entities)
        for eid, entity in profile.entities.items():
            other = restored.entities[eid]
            assert (entity.key, entity.size, entity.refs, entity.collided) == (
                other.key, other.size, other.refs, other.collided
            )

    def test_trg_survives(self, profile):
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored.trg == profile.trg

    def test_metadata_survives(self, profile):
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored.chunk_size == profile.chunk_size
        assert restored.queue_threshold == profile.queue_threshold
        assert restored.name_depth == profile.name_depth
        assert restored.total_accesses == profile.total_accesses
        assert restored.alloc_adjacency == profile.alloc_adjacency

    def test_file_round_trip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        restored = load_profile(path)
        assert restored.trg == profile.trg

    def test_wrong_kind_rejected(self, profile):
        data = profile_to_dict(profile)
        data["kind"] = "something-else"
        with pytest.raises(SerializationError):
            profile_from_dict(data)

    def test_wrong_version_rejected(self, profile):
        data = profile_to_dict(profile)
        data["format"] = 999
        with pytest.raises(SerializationError):
            profile_from_dict(data)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_profile(path)

    def test_output_is_plain_json(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        json.loads(path.read_text())  # must parse as standard JSON


class TestPlacementRoundTrip:
    @pytest.fixture
    def placement(self, profile, small_cache):
        return CCDPPlacer(profile, small_cache).place()

    def test_layout_survives(self, placement):
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.global_offsets == placement.global_offsets
        assert restored.data_base == placement.data_base
        assert restored.stack_base == placement.stack_base
        assert restored.heap_table == placement.heap_table
        assert restored.cache_config == placement.cache_config

    def test_stats_survive(self, placement):
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.stats == placement.stats

    def test_file_round_trip_drives_identical_simulation(
        self, placement, toy_workload, small_cache, tmp_path
    ):
        path = tmp_path / "placement.json"
        save_placement(placement, path)
        restored = load_placement(path)
        direct = measure(
            toy_workload, toy_workload.test_input,
            CCDPResolver(placement), small_cache,
        )
        via_file = measure(
            toy_workload, toy_workload.test_input,
            CCDPResolver(restored), small_cache,
        )
        assert direct.cache.miss_rate == via_file.cache.miss_rate

    def test_wrong_kind_rejected(self, placement):
        data = placement_to_dict(placement)
        data["kind"] = "ccdp-profile"
        with pytest.raises(SerializationError):
            placement_from_dict(data)
