"""Job-graph construction: dedup, cycles, cancellation, warm pruning."""

import pytest

from repro.runtime.parallel import ExperimentSpec
from repro.sched.graph import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    PRUNED,
    GraphCycleError,
    JobGraph,
)
from repro.sched.jobs import plan_experiments, probe_graph
from repro.store import ArtifactStore, use_store


def _spec(name, same_input):
    return ExperimentSpec(workload=name, same_input=same_input)


class TestDedup:
    def test_table2_and_table4_share_training_stages(self):
        graph, aggregates = plan_experiments(
            [_spec("deltablue", True), _spec("deltablue", False)]
        )
        # Shared: the training trace, the profile, the placement.
        counts = graph.counts()
        assert counts["deduped"] == 3
        kinds = sorted(job.kind for job in graph)
        assert kinds.count("trace") == 2  # train + test, not three
        assert kinds.count("profile") == 1
        assert kinds.count("place") == 1
        assert kinds.count("measure") == 4  # natural+ccdp per table
        assert len(aggregates) == 2
        # Both aggregates hang off the *same* place node.
        places = {aggregates[0].meta["roles"]["place"].key,
                  aggregates[1].meta["roles"]["place"].key}
        assert len(places) == 1

    def test_distinct_programs_share_nothing(self):
        graph, _ = plan_experiments(
            [_spec("deltablue", True), _spec("espresso", True)]
        )
        assert graph.counts()["deduped"] == 0

    def test_kind_collision_rejected(self):
        graph = JobGraph()
        graph.add("trace", "k1", label="a")
        with pytest.raises(ValueError, match="collision"):
            graph.add("profile", "k1", label="b")


class TestCycles:
    def test_cycle_rejected(self):
        graph = JobGraph()
        a = graph.add("trace", "a", label="a")
        b = graph.add("profile", "b", label="b", deps=[a])
        # Close the loop by hand: a depends on b.
        a.deps.append(b)
        b.dependents.append(a)
        with pytest.raises(GraphCycleError, match="a"):
            graph.seal()

    def test_acyclic_graph_orders_deps_first(self):
        graph, _ = plan_experiments([_spec("deltablue", False)])
        order = {job.key: position for position, job in enumerate(graph.topo_order())}
        for job in graph:
            for dep in job.deps:
                assert order[dep.key] < order[job.key]


class TestCancellation:
    def test_failed_job_cancels_transitive_dependents(self):
        graph, aggregates = plan_experiments([_spec("deltablue", False)])
        trace_train = next(
            job for job in graph if job.kind == "trace" and "chain-900" in job.label
        )
        cancelled = graph.mark_failed(trace_train, "boom")
        assert trace_train.state == FAILED
        labels = {job.label for job in cancelled}
        assert any(label.startswith("profile:") for label in labels)
        assert any(label.startswith("place:") for label in labels)
        assert aggregates[0].state == CANCELLED
        # The test-input trace and its natural measurement are unaffected.
        natural = next(
            job for job in graph if job.label.endswith("chain-1100:natural")
        )
        assert natural.state == PENDING

    def test_done_dependents_stop_the_cancellation_wave(self):
        graph = JobGraph()
        a = graph.add("trace", "a", label="a")
        b = graph.add("profile", "b", label="b", deps=[a])
        c = graph.add("place", "c", label="c", deps=[b])
        graph.mark_done(b)
        graph.mark_failed(a, "late")
        assert b.state == DONE
        # c's only dependency already finished: it is still runnable.
        assert c.state == PENDING
        assert c.ready()


class TestWarmPrune:
    def test_empty_store_prunes_nothing(self, tmp_path):
        graph, _ = plan_experiments([_spec("deltablue", True)])
        store = ArtifactStore(tmp_path / "store")
        with use_store(store):
            pruned = probe_graph(store, graph)
        assert pruned == 0
        assert all(job.state == PENDING for job in graph)

    def test_filled_store_prunes_every_stage_job(self, tmp_path):
        from repro.experiments.common import clear_cache
        from repro.sched.executor import run_experiments_dag

        specs = [_spec("deltablue", True)]
        store = ArtifactStore(tmp_path / "store")
        with use_store(store):
            run_experiments_dag(specs, jobs=1)
        clear_cache()
        graph, _ = plan_experiments(specs)
        with use_store(ArtifactStore(tmp_path / "store")) as fresh:
            pruned = probe_graph(fresh, graph)
        stage_jobs = [job for job in graph if job.kind != "aggregate"]
        assert pruned == len(stage_jobs)
        assert all(job.state == PRUNED for job in stage_jobs)

    def test_critical_path_ignores_pruned_jobs(self):
        graph = JobGraph()
        a = graph.add("trace", "a", label="a", cost=5.0)
        b = graph.add("profile", "b", label="b", deps=[a], cost=2.0)
        assert graph.critical_path_seconds() == pytest.approx(7.0)
        graph.mark_pruned(a)
        assert graph.critical_path_seconds() == pytest.approx(2.0)
