"""Tests for the replay sink and the end-to-end experiment driver."""

from __future__ import annotations

import pytest

from repro.analysis.paging import PageTracker
from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator
from repro.runtime.driver import (
    build_placement,
    collect_stats,
    measure,
    profile_workload,
    run_experiment,
)
from repro.runtime.replay import ReplaySink
from repro.runtime.resolvers import NaturalResolver
from repro.trace.events import Category, ObjectInfo


class TestReplaySink:
    def test_accesses_resolve_to_addresses(self):
        resolver = NaturalResolver()
        cache = CacheSimulator(CacheConfig(1024, 32, 1))
        sink = ReplaySink(resolver, cache)
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 64, "g"))
        sink.on_access(1, 0, 4, False, Category.GLOBAL)
        sink.on_access(1, 0, 4, False, Category.GLOBAL)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_heap_lifecycle_through_replay(self):
        resolver = NaturalResolver()
        cache = CacheSimulator(CacheConfig(1024, 32, 1))
        sink = ReplaySink(resolver, cache)
        info = ObjectInfo(2, Category.HEAP, 32, "h")
        sink.on_alloc(info, (0x1,))
        sink.on_access(2, 8, 4, True, Category.HEAP)
        sink.on_free(2)
        assert cache.stats.misses_by_category[Category.HEAP] == 1

    def test_page_tracking(self):
        resolver = NaturalResolver()
        cache = CacheSimulator(CacheConfig(1024, 32, 1))
        pages = PageTracker()
        sink = ReplaySink(resolver, cache, pages)
        sink.on_object(ObjectInfo(1, Category.GLOBAL, 64, "g"))
        sink.on_access(1, 0, 4, False, Category.GLOBAL)
        assert pages.total_pages == 1


class TestDriver:
    def test_profile_workload(self, toy_workload, small_cache):
        profile = profile_workload(
            toy_workload, toy_workload.train_input, small_cache
        )
        assert profile.total_accesses > 0
        assert profile.entity_by_key("g:table_a") is not None

    def test_collect_stats(self, toy_workload):
        stats = collect_stats(toy_workload, toy_workload.train_input)
        assert stats.memory_refs > 0
        assert stats.alloc_count > 0

    def test_measure_natural(self, toy_workload, small_cache):
        result = measure(
            toy_workload,
            toy_workload.train_input,
            NaturalResolver(),
            small_cache,
            classify=True,
            track_pages=True,
        )
        stats = result.cache
        assert stats.accesses > 0
        assert stats.compulsory + stats.conflict + stats.capacity == stats.misses
        assert result.paging.total_pages > 0

    def test_build_placement_respects_workload_heap_flag(
        self, toy_workload, small_cache
    ):
        _profile, placement = build_placement(toy_workload, cache_config=small_cache)
        assert placement.heap_table  # toy workload has place_heap=True

    def test_run_experiment_shapes(self, toy_workload, small_cache):
        result = run_experiment(
            toy_workload, cache_config=small_cache, include_random=True
        )
        assert result.workload == "toy"
        assert result.train_input == "train"
        assert result.test_input == "test"
        assert result.original.cache.accesses == result.ccdp.cache.accesses
        assert result.random is not None

    def test_experiment_is_deterministic(self, toy_workload, small_cache):
        first = run_experiment(toy_workload, cache_config=small_cache)
        second = run_experiment(toy_workload, cache_config=small_cache)
        assert first.original.cache.miss_rate == second.original.cache.miss_rate
        assert first.ccdp.cache.miss_rate == second.ccdp.cache.miss_rate

    def test_same_input_experiment(self, toy_workload, small_cache):
        result = run_experiment(
            toy_workload,
            test_input=toy_workload.train_input,
            cache_config=small_cache,
        )
        assert result.test_input == result.train_input

    def test_miss_reduction_metric(self, toy_workload, small_cache):
        result = run_experiment(toy_workload, cache_config=small_cache)
        expected = 100.0 * (
            result.original.cache.miss_rate - result.ccdp.cache.miss_rate
        ) / result.original.cache.miss_rate
        assert result.miss_reduction_pct == pytest.approx(expected)

    def test_ccdp_not_worse_on_toy(self, toy_workload, small_cache):
        result = run_experiment(toy_workload, cache_config=small_cache)
        assert result.ccdp.cache.miss_rate <= result.original.cache.miss_rate * 1.05
